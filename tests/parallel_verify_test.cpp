// Parallel verification engine tests: the bit-identity guarantee. Every
// parallel path — fixed-argument pairing, pair_product, batch aggregation,
// per-block audit sweeps, seeded Monte-Carlo — must reproduce the serial
// result exactly (values, verdicts, failure counts, AND op-counter totals)
// for every thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hash/hash_to.h"
#include "ibc/dvs.h"
#include "ibc/keys.h"
#include "pairing/parallel.h"
#include "pairing/precompute.h"
#include "seccloud/auditor.h"
#include "seccloud/client.h"
#include "seccloud/codec.h"
#include "seccloud/server.h"
#include "sim/montecarlo.h"

namespace seccloud {
namespace {

using hash::as_bytes;
using num::Xoshiro256;
using pairing::tiny_group;

// --- FixedPairing ----------------------------------------------------------

class FixedPairingTest : public ::testing::Test {
 protected:
  FixedPairingTest() : g(tiny_group()), rng(31337) {}

  pairing::Point random_point() {
    return g.mul(g.random_scalar(rng), g.generator());
  }

  const pairing::PairingGroup& g;
  Xoshiro256 rng;
};

TEST_F(FixedPairingTest, MatchesPairForRandomPoints) {
  for (int i = 0; i < 8; ++i) {
    const pairing::Point fixed_pt = random_point();
    const pairing::FixedPairing fixed{g, fixed_pt};
    for (int j = 0; j < 4; ++j) {
      const pairing::Point q = random_point();
      // ê is symmetric on G1 x G1, so the precomputed ê(fixed, ·) must equal
      // pair(·, fixed) — the argument order every dv check uses.
      EXPECT_EQ(fixed.pair_with(q), g.pair(q, fixed_pt));
      EXPECT_EQ(fixed.pair_with(q), g.pair(fixed_pt, q));
    }
  }
}

TEST_F(FixedPairingTest, HandlesInfinityOnEitherSide) {
  const pairing::Point p = random_point();
  const pairing::FixedPairing fixed{g, p};
  EXPECT_EQ(fixed.pair_with(pairing::Point::at_infinity()),
            g.pair(p, pairing::Point::at_infinity()));

  const pairing::FixedPairing fixed_at_inf{g, pairing::Point::at_infinity()};
  EXPECT_EQ(fixed_at_inf.pair_with(p), g.pair(pairing::Point::at_infinity(), p));
  EXPECT_EQ(fixed_at_inf.pair_with(p), g.gt_one());
}

TEST_F(FixedPairingTest, CountsOpsLikePair) {
  const pairing::Point p = random_point();
  const pairing::Point q = random_point();

  g.reset_counters();
  (void)g.pair(q, p);
  const pairing::OpCounters direct = g.counters();

  const pairing::FixedPairing fixed{g, p};
  g.reset_counters();
  (void)fixed.pair_with(q);
  EXPECT_EQ(g.counters(), direct);
}

// --- engine: pair_product --------------------------------------------------

TEST_F(FixedPairingTest, ParallelPairProductBitIdentical) {
  std::vector<std::pair<pairing::Point, pairing::Point>> pairs;
  for (int i = 0; i < 7; ++i) pairs.emplace_back(random_point(), random_point());
  pairs.emplace_back(pairing::Point::at_infinity(), random_point());  // skipped term

  g.reset_counters();
  const pairing::Gt serial = g.pair_product(pairs);
  const pairing::OpCounters serial_ops = g.counters();

  for (const std::size_t threads : {1u, 2u, 4u}) {
    const pairing::ParallelPairingEngine engine{g, threads};
    g.reset_counters();
    EXPECT_EQ(engine.pair_product(pairs), serial) << threads << " threads";
    EXPECT_EQ(g.counters(), serial_ops) << threads << " threads";
  }
}

// --- engine: batch aggregation and DesignatedVerifier ----------------------

class ParallelDvsTest : public ::testing::Test {
 protected:
  ParallelDvsTest()
      : g(tiny_group()),
        rng(999),
        sio(g, rng),
        alice(sio.extract("alice")),
        bob(sio.extract("bob")),
        server(sio.extract("cloud-server")) {
    for (int i = 0; i < 12; ++i) {
      const ibc::IdentityKey& signer = i % 2 == 0 ? alice : bob;
      messages.push_back("msg-" + std::to_string(i));
      sigs.push_back(ibc::dv_transform(
          g, ibc::ibs_sign(g, signer, as_bytes(messages.back()), rng), server.q_id));
      signer_ids.push_back(signer.q_id);
    }
  }

  std::vector<ibc::BatchEntry> entries() const {
    std::vector<ibc::BatchEntry> out;
    for (std::size_t i = 0; i < sigs.size(); ++i) {
      out.push_back({signer_ids[i], as_bytes(messages[i]), &sigs[i]});
    }
    return out;
  }

  const pairing::PairingGroup& g;
  Xoshiro256 rng;
  ibc::Sio sio;
  ibc::IdentityKey alice;
  ibc::IdentityKey bob;
  ibc::IdentityKey server;
  std::vector<std::string> messages;
  std::vector<ibc::DvSignature> sigs;
  std::vector<pairing::Point> signer_ids;
};

TEST_F(ParallelDvsTest, AddBatchStateBitIdenticalToSequentialAdds) {
  ibc::BatchAccumulator serial{g};
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    serial.add(signer_ids[i], as_bytes(messages[i]), sigs[i]);
  }

  for (const std::size_t threads : {1u, 2u, 4u}) {
    const pairing::ParallelPairingEngine engine{g, threads};
    ibc::BatchAccumulator parallel{g};
    parallel.add_batch(engine, entries());
    EXPECT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(parallel.u_aggregate(), serial.u_aggregate()) << threads << " threads";
    EXPECT_EQ(parallel.sigma_aggregate(), serial.sigma_aggregate())
        << threads << " threads";
  }
}

TEST_F(ParallelDvsTest, ParallelBatchVerifyMatchesSerialVerdicts) {
  const auto batch = entries();
  const bool serial_ok = ibc::dv_batch_verify(g, batch, server);
  EXPECT_TRUE(serial_ok);

  auto tampered_sigs = sigs;
  tampered_sigs[5].sigma = g.gt_mul(tampered_sigs[5].sigma,
                                    g.pair(g.generator(), g.generator()));
  std::vector<ibc::BatchEntry> tampered;
  for (std::size_t i = 0; i < tampered_sigs.size(); ++i) {
    tampered.push_back({signer_ids[i], as_bytes(messages[i]), &tampered_sigs[i]});
  }
  EXPECT_FALSE(ibc::dv_batch_verify(g, tampered, server));

  for (const std::size_t threads : {1u, 2u, 4u}) {
    const pairing::ParallelPairingEngine engine{g, threads};
    EXPECT_EQ(ibc::dv_batch_verify(engine, batch, server), serial_ok);
    EXPECT_FALSE(ibc::dv_batch_verify(engine, tampered, server));
  }
}

TEST_F(ParallelDvsTest, DesignatedVerifierMatchesDvVerify) {
  const ibc::DesignatedVerifier verifier{g, server};
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    EXPECT_TRUE(verifier.verify(signer_ids[i], as_bytes(messages[i]), sigs[i]));
    EXPECT_EQ(verifier.verify(signer_ids[i], as_bytes(messages[i]), sigs[i]),
              ibc::dv_verify(g, signer_ids[i], as_bytes(messages[i]), sigs[i], server));
    // Cross-wiring message i with signature i+1 must fail identically.
    const std::size_t j = (i + 1) % sigs.size();
    EXPECT_EQ(verifier.verify(signer_ids[i], as_bytes(messages[i]), sigs[j]),
              ibc::dv_verify(g, signer_ids[i], as_bytes(messages[i]), sigs[j], server));
  }
}

// --- audits ----------------------------------------------------------------

class ParallelAuditTest : public ::testing::Test {
 protected:
  ParallelAuditTest()
      : g(tiny_group()),
        rng(4242),
        sio(g, rng),
        user_key(sio.extract("user")),
        server_key(sio.extract("server")),
        da_key(sio.extract("da")),
        client(g, sio.params(), user_key, server_key.q_id, da_key.q_id) {
    for (std::uint64_t i = 0; i < 10; ++i) {
      blocks.push_back(client.sign_block(core::DataBlock::from_value(i, 7 * i), rng));
    }
    for (std::uint64_t i = 0; i < 5; ++i) {
      core::ComputeRequest req;
      req.kind = core::FuncKind::kSum;
      req.positions = {2 * i, 2 * i + 1};
      task.requests.push_back(std::move(req));
    }
  }

  core::BlockLookup lookup() const {
    return [this](std::uint64_t index) -> const core::SignedBlock* {
      return index < blocks.size() ? &blocks[index] : nullptr;
    };
  }

  static void expect_reports_equal(const core::AuditReport& a, const core::AuditReport& b,
                                   const char* what) {
    EXPECT_EQ(a.accepted, b.accepted) << what;
    EXPECT_EQ(a.warrant_rejected, b.warrant_rejected) << what;
    EXPECT_EQ(a.root_signature_valid, b.root_signature_valid) << what;
    EXPECT_EQ(a.samples_requested, b.samples_requested) << what;
    EXPECT_EQ(a.samples_returned, b.samples_returned) << what;
    EXPECT_EQ(a.signature_failures, b.signature_failures) << what;
    EXPECT_EQ(a.computation_failures, b.computation_failures) << what;
    EXPECT_EQ(a.root_failures, b.root_failures) << what;
    EXPECT_EQ(a.ops, b.ops) << what << " (op counters diverged)";
  }

  const pairing::PairingGroup& g;
  Xoshiro256 rng;
  ibc::Sio sio;
  ibc::IdentityKey user_key;
  ibc::IdentityKey server_key;
  ibc::IdentityKey da_key;
  core::UserClient client;
  std::vector<core::SignedBlock> blocks;
  core::ComputationTask task;
};

TEST_F(ParallelAuditTest, StorageAuditBitIdenticalAcrossThreadCounts) {
  auto tampered = blocks;
  tampered[3].block.payload[0] ^= 0xFF;  // one bad signature in the set

  for (const auto mode :
       {core::SignatureCheckMode::kIndividual, core::SignatureCheckMode::kBatch}) {
    for (const auto* set : {&blocks, &tampered}) {
      const auto serial = core::verify_storage_audit(
          g, user_key.q_id, *set, da_key, core::VerifierRole::kDesignatedAgency, mode);
      for (const std::size_t threads : {1u, 2u, 4u}) {
        const pairing::ParallelPairingEngine engine{g, threads};
        const auto parallel = core::verify_storage_audit(
            engine, user_key.q_id, *set, da_key, core::VerifierRole::kDesignatedAgency,
            mode);
        EXPECT_EQ(parallel.accepted, serial.accepted);
        EXPECT_EQ(parallel.blocks_checked, serial.blocks_checked);
        EXPECT_EQ(parallel.signature_failures, serial.signature_failures);
        EXPECT_EQ(parallel.ops, serial.ops) << "op counters diverged at " << threads;
      }
    }
  }
}

TEST_F(ParallelAuditTest, ComputationAuditBitIdenticalAcrossThreadCounts) {
  const core::TaskExecution exec = core::execute_task_honestly(task, lookup());
  const core::Commitment commitment =
      core::make_commitment(g, exec, server_key, da_key.q_id, user_key.q_id, rng);
  const core::Warrant warrant = client.make_warrant(da_key.id, 99, rng);
  const core::AuditChallenge challenge =
      core::make_challenge(task.requests.size(), 3, warrant, rng);
  const core::AuditResponse honest = core::respond_to_audit(
      g, exec, challenge, lookup(), user_key.q_id, server_key, 1);

  core::AuditResponse cheating = honest;  // corrupt one input-block signature
  const core::AuditResponse& cheating_ref = cheating;
  ASSERT_FALSE(cheating.items.empty());
  ASSERT_FALSE(cheating.items[0].inputs.empty());
  cheating.items[0].inputs[0].sig.sigma_da =
      g.gt_mul(cheating.items[0].inputs[0].sig.sigma_da,
               g.pair(g.generator(), g.generator()));

  for (const auto mode :
       {core::SignatureCheckMode::kIndividual, core::SignatureCheckMode::kBatch}) {
    for (const auto* response : {&honest, &cheating_ref}) {
      const auto serial =
          core::verify_computation_audit(g, user_key.q_id, server_key.q_id, task,
                                         commitment, challenge, *response, da_key, mode);
      for (const std::size_t threads : {1u, 2u, 4u}) {
        const pairing::ParallelPairingEngine engine{g, threads};
        const auto parallel = core::verify_computation_audit(
            engine, user_key.q_id, server_key.q_id, task, commitment, challenge,
            *response, da_key, mode);
        expect_reports_equal(parallel, serial, response == &honest ? "honest" : "cheat");
      }
    }
  }

  // Sanity on the verdicts themselves.
  const auto accepted = core::verify_computation_audit(
      g, user_key.q_id, server_key.q_id, task, commitment, challenge, honest, da_key,
      core::SignatureCheckMode::kBatch);
  EXPECT_TRUE(accepted.accepted);
  const auto rejected = core::verify_computation_audit(
      g, user_key.q_id, server_key.q_id, task, commitment, challenge, cheating, da_key,
      core::SignatureCheckMode::kBatch);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_GT(rejected.signature_failures, 0u);
}

// --- seeded Monte-Carlo ----------------------------------------------------

TEST(ParallelMonteCarlo, SeededRunsInvariantToThreadCount) {
  sim::DetectionParams params;
  params.cheat = {0.5, 0.5, 2.0, 0.0};
  params.task_size = 64;
  params.sample_size = 8;
  constexpr std::size_t kTrials = 2000;
  constexpr std::uint64_t kSeed = 20100611;

  const auto serial = sim::run_detection_model_seeded(params, kTrials, kSeed, nullptr);
  EXPECT_EQ(serial.trials, kTrials);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    util::ThreadPool pool{threads};
    const auto parallel = sim::run_detection_model_seeded(params, kTrials, kSeed, &pool);
    EXPECT_EQ(parallel.undetected, serial.undetected) << threads << " threads";
    EXPECT_EQ(parallel.trials, serial.trials);
  }

  // And a different seed gives a (almost surely) different count, proving
  // the seed actually drives the trials.
  const auto reseeded = sim::run_detection_model_seeded(params, kTrials, kSeed + 1, nullptr);
  EXPECT_EQ(reseeded.trials, kTrials);
}

}  // namespace
}  // namespace seccloud
