// Property tests for the wire codecs (ctest label `property`).
//
// Seeded generators produce random protocol values — tasks, commitments,
// challenges, responses, signed-block lists — and the suite checks, for
// every type:
//   * decode(encode(x)) == x (the codecs are lossless);
//   * every single-byte mutation of a valid encoding either decodes cleanly
//     (to something — benign payload flips are legal) or fails, and in both
//     cases without pathological allocation;
//   * every strict prefix fails without pathological allocation.
// Iteration counts obey SECCLOUD_PROPERTY_ITERS (see property_support.h).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "property_support.h"
#include "seccloud/codec.h"
#include "seccloud/session.h"

// Binary-wide allocation meter (same technique as codec_test.cpp): a decoder
// tricked by a mutated length/count header into a huge reserve() shows up as
// megabytes here.
namespace {
std::atomic<std::size_t> g_bytes_allocated{0};
}  // namespace

void* operator new(std::size_t size) {
  g_bytes_allocated.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seccloud::core {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;
using testsupport::property_iters;

// One mutated decode may legitimately build a large-ish value (a flipped
// payload length can claim up to the remaining bytes), but never orders of
// magnitude more than the input itself.
constexpr std::size_t kAllocationBound = 64u * 1024;

// --- seeded generators -----------------------------------------------------

class Gen {
 public:
  explicit Gen(std::uint64_t seed) : g_(tiny_group()), rng_(seed) {}

  const pairing::PairingGroup& group() const { return g_; }

  std::uint64_t u64() { return rng_.next_u64(); }
  std::size_t size(std::size_t max) { return static_cast<std::size_t>(rng_.next_u64() % (max + 1)); }

  Point point() {
    if (rng_.next_u64() % 8 == 0) return Point::at_infinity();
    return g_.mul(g_.random_scalar(rng_), g_.generator());
  }

  Gt gt() {
    // Any pair of residues < p is a decodable GT encoding; scalars mod q
    // are a convenient uniform-ish subset.
    return Gt{g_.random_scalar(rng_), g_.random_scalar(rng_)};
  }

  ibc::DvSignature dv_signature() { return {point(), gt()}; }

  merkle::Digest digest() {
    merkle::Digest d;
    rng_.fill(d);
    return d;
  }

  Bytes bytes(std::size_t max_len) {
    Bytes out(size(max_len));
    rng_.fill(out);
    return out;
  }

  std::string identity() {
    static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789@.-";
    std::string out;
    const std::size_t len = size(20);
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      out.push_back(kAlphabet[rng_.next_u64() % (sizeof(kAlphabet) - 1)]);
    }
    return out;
  }

  SignedBlock signed_block() {
    SignedBlock sb;
    sb.block.index = u64();
    sb.block.payload = bytes(40);
    sb.sig.u = point();
    sb.sig.sigma_cs = gt();
    sb.sig.sigma_da = gt();
    return sb;
  }

  ComputationTask task() {
    ComputationTask t;
    const std::size_t n = size(6);
    for (std::size_t i = 0; i < n; ++i) {
      ComputeRequest req;
      req.kind = static_cast<FuncKind>(rng_.next_u64() % 6);
      const std::size_t ops = size(5);
      for (std::size_t j = 0; j < ops; ++j) req.positions.push_back(u64());
      t.requests.push_back(std::move(req));
    }
    return t;
  }

  Commitment commitment() {
    Commitment c;
    const std::size_t n = size(8);
    for (std::size_t i = 0; i < n; ++i) c.results.push_back(u64());
    c.root = digest();
    c.root_sig_da = dv_signature();
    c.root_sig_user = dv_signature();
    return c;
  }

  Warrant warrant() {
    Warrant w;
    w.delegator_id = identity();
    w.delegatee_id = identity();
    w.expiry_epoch = u64();
    w.authorization = dv_signature();
    return w;
  }

  AuditChallenge challenge() {
    AuditChallenge ch;
    const std::size_t n = size(10);
    for (std::size_t i = 0; i < n; ++i) ch.sample_indices.push_back(u64());
    ch.warrant = warrant();
    return ch;
  }

  AuditResponse response() {
    AuditResponse r;
    r.warrant_accepted = (rng_.next_u64() & 1) != 0;
    const std::size_t n = size(3);
    for (std::size_t i = 0; i < n; ++i) {
      AuditResponseItem item;
      item.request_index = u64();
      const std::size_t inputs = size(2);
      for (std::size_t j = 0; j < inputs; ++j) item.inputs.push_back(signed_block());
      item.result = u64();
      const std::size_t depth = size(5);
      for (std::size_t d = 0; d < depth; ++d) {
        item.path.push_back({digest(), (rng_.next_u64() & 1) != 0});
      }
      r.items.push_back(std::move(item));
    }
    return r;
  }

  std::vector<SignedBlock> block_list() {
    std::vector<SignedBlock> out;
    const std::size_t n = size(4);
    for (std::size_t i = 0; i < n; ++i) out.push_back(signed_block());
    return out;
  }

 private:
  const pairing::PairingGroup& g_;
  Xoshiro256 rng_;
};

// Runs the three properties for one (value, codec) pairing.
template <typename T, typename Encode, typename Decode>
void check_properties(const pairing::PairingGroup& g, const T& value, Encode&& encode,
                      Decode&& decode, bool mutate) {
  const Bytes wire = encode(g, value);
  const auto back = decode(g, wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, value);

  if (!mutate) return;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
      Bytes mutated = wire;
      mutated[i] ^= mask;
      const std::size_t before = g_bytes_allocated.load();
      (void)decode(g, mutated);  // must not crash; result may be anything
      EXPECT_LT(g_bytes_allocated.load() - before, kAllocationBound)
          << "mutating byte " << i << " with mask " << int(mask)
          << " triggered a pathological allocation";
    }
  }
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::size_t before = g_bytes_allocated.load();
    EXPECT_FALSE(decode(g, Bytes(wire.begin(), wire.begin() + cut)).has_value());
    EXPECT_LT(g_bytes_allocated.load() - before, kAllocationBound);
  }
}

// The byte-level mutation sweep is quadratic-ish in the encoding size, so it
// runs on a few instances; the pure round trip runs on all of them.
template <typename MakeValue, typename Encode, typename Decode>
void run_suite(MakeValue&& make, Encode&& encode, Decode&& decode) {
  const std::size_t iters = property_iters(64);
  const std::size_t mutate_iters = std::min<std::size_t>(iters, 4);
  for (std::size_t i = 0; i < iters; ++i) {
    Gen gen{0x5EED0000 + i};
    const auto value = make(gen);
    check_properties(gen.group(), value, encode, decode, i < mutate_iters);
  }
}

TEST(CodecPropertyTest, SignedBlockRoundTripAndMutation) {
  run_suite([](Gen& gen) { return gen.signed_block(); }, encode_signed_block,
            decode_signed_block);
}

TEST(CodecPropertyTest, TaskRoundTripAndMutation) {
  run_suite([](Gen& gen) { return gen.task(); }, encode_task, decode_task);
}

TEST(CodecPropertyTest, CommitmentRoundTripAndMutation) {
  run_suite([](Gen& gen) { return gen.commitment(); }, encode_commitment,
            decode_commitment);
}

TEST(CodecPropertyTest, WarrantRoundTripAndMutation) {
  run_suite([](Gen& gen) { return gen.warrant(); }, encode_warrant, decode_warrant);
}

TEST(CodecPropertyTest, ChallengeRoundTripAndMutation) {
  run_suite([](Gen& gen) { return gen.challenge(); }, encode_challenge, decode_challenge);
}

TEST(CodecPropertyTest, ResponseRoundTripAndMutation) {
  run_suite([](Gen& gen) { return gen.response(); }, encode_response, decode_response);
}

TEST(CodecPropertyTest, BlockListRoundTripAndMutation) {
  run_suite([](Gen& gen) { return gen.block_list(); },
            [](const pairing::PairingGroup& g, const std::vector<SignedBlock>& blocks) {
              return encode_block_list(g, blocks);
            },
            decode_block_list);
}

// Session frames ride the same channel: the whole frame codec must satisfy
// the same totality property (here every mutation MUST fail — the checksum
// covers every byte).
TEST(CodecPropertyTest, FrameRoundTripAndMutation) {
  const std::size_t iters = property_iters(64);
  for (std::size_t i = 0; i < iters; ++i) {
    Gen gen{0xF4A3E000 + i};
    const auto type = static_cast<MessageType>(1 + gen.size(kMessageTypeCount - 1));
    const auto session_id = static_cast<std::uint32_t>(gen.u64());
    const auto seq = static_cast<std::uint32_t>(gen.u64());
    const Bytes payload = gen.bytes(64);
    const Bytes wire = encode_frame(type, session_id, seq, payload);
    const auto frame = decode_frame(wire);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->session_id, session_id);
    EXPECT_EQ(frame->seq, seq);
    EXPECT_EQ(frame->payload, payload);
    if (i >= 2) continue;  // byte sweep on a couple of instances
    for (std::size_t b = 0; b < wire.size(); ++b) {
      Bytes mutated = wire;
      mutated[b] ^= 0xFF;
      EXPECT_FALSE(decode_frame(mutated).has_value());
    }
  }
}

// Every codec above bottoms out in BigUint::to_bytes/from_bytes; the zero
// and fixed-width corners must round-trip (zero once serialized as an empty
// buffer at the default width, indistinguishable from "absent" on the wire).
TEST(CodecPropertyTest, BigUintByteRoundTripCorners) {
  using num::BigUint;

  // Width-0 zero serializes as exactly one zero byte and round-trips.
  const BigUint zero;
  const auto zero_bytes = zero.to_bytes();
  ASSERT_EQ(zero_bytes.size(), 1u);
  EXPECT_EQ(zero_bytes[0], 0x00);
  EXPECT_EQ(BigUint::from_bytes(zero_bytes), zero);

  // from_bytes of an empty buffer is still zero (leading zeros allowed).
  EXPECT_EQ(BigUint::from_bytes({}), zero);

  // Fixed widths: zero and boundary values pad to exactly `width` bytes and
  // round-trip through from_bytes.
  for (const std::size_t width : {1u, 7u, 8u, 9u, 64u}) {
    const BigUint max = (BigUint{1} << (8 * width)) - BigUint{1};
    for (const BigUint& v : {zero, BigUint{1}, BigUint{0xFF}, max}) {
      const auto bytes = v.to_bytes(width);
      EXPECT_EQ(bytes.size(), width);
      EXPECT_EQ(BigUint::from_bytes(bytes), v);
    }
    // One past the width must be rejected, not truncated.
    EXPECT_THROW((max + BigUint{1}).to_bytes(width), std::length_error);
  }

  // Random values: minimal-width serialization never emits a leading zero
  // byte (except the canonical zero encoding) and always round-trips.
  Xoshiro256 rng{0xB17E5};
  const std::size_t iters = property_iters(64);
  for (std::size_t i = 0; i < iters; ++i) {
    const BigUint v = rng.next_bits(1 + (rng.next_u64() % 520));
    const auto bytes = v.to_bytes();
    ASSERT_FALSE(bytes.empty());
    if (!v.is_zero()) EXPECT_NE(bytes[0], 0x00);
    EXPECT_EQ(BigUint::from_bytes(bytes), v);
  }
}

}  // namespace
}  // namespace seccloud::core
