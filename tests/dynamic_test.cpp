// Dynamic-storage extension tests: versioned insert/update/delete, replay
// and rollback protection, and the version-aware audit.
#include <gtest/gtest.h>

#include "seccloud/dynamic.h"

namespace seccloud::core {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;

class DynamicTest : public ::testing::Test {
 protected:
  DynamicTest()
      : g(tiny_group()),
        rng(909),
        sio(g, rng),
        user_key(sio.extract("user")),
        server_key(sio.extract("server")),
        da_key(sio.extract("da")),
        client(g, sio.params(), user_key, server_key.q_id, da_key.q_id),
        store(g, server_key, user_key.q_id) {}

  std::vector<std::uint64_t> all_positions(std::uint64_t n) const {
    std::vector<std::uint64_t> out(n);
    for (std::uint64_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }

  DynamicAuditReport audit(std::span<const std::uint64_t> positions) {
    return verify_dynamic_storage(g, user_key.q_id, store, client.version_table(),
                                  positions, da_key, VerifierRole::kDesignatedAgency);
  }

  const pairing::PairingGroup& g;
  Xoshiro256 rng;
  ibc::Sio sio;
  ibc::IdentityKey user_key;
  ibc::IdentityKey server_key;
  ibc::IdentityKey da_key;
  DynamicClient client;
  DynamicServerStore store;
};

TEST_F(DynamicTest, InsertApplyAudit) {
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(i, 10 * i), rng)));
  }
  EXPECT_EQ(store.size(), 8u);
  EXPECT_EQ(client.live_blocks(), 8u);
  const auto report = audit(all_positions(8));
  EXPECT_TRUE(report.accepted);
  EXPECT_EQ(report.blocks_checked, 8u);
}

TEST_F(DynamicTest, DoubleInsertRejectedClientSide) {
  (void)client.insert(DataBlock::from_value(0, 1), rng);
  EXPECT_THROW(client.insert(DataBlock::from_value(0, 2), rng), std::invalid_argument);
}

TEST_F(DynamicTest, UpdateBumpsVersionAndAuditsClean) {
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 100), rng)));
  EXPECT_TRUE(store.apply(client.update(DataBlock::from_value(0, 200), rng)));
  EXPECT_EQ(store.lookup(0)->version, 2u);
  EXPECT_EQ(store.lookup(0)->block.block.value(), 200u);
  EXPECT_TRUE(audit(all_positions(1)).accepted);
}

TEST_F(DynamicTest, UpdateUnknownPositionThrows) {
  EXPECT_THROW(client.update(DataBlock::from_value(5, 1), rng), std::out_of_range);
}

TEST_F(DynamicTest, DeleteRemovesAndAuditsClean) {
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 1), rng)));
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(1, 2), rng)));
  EXPECT_TRUE(store.apply(client.remove(0, rng)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(client.live_blocks(), 1u);
  EXPECT_TRUE(audit(all_positions(2)).accepted);
}

TEST_F(DynamicTest, ReplayedOperationRejected) {
  const StorageOp op = client.insert(DataBlock::from_value(0, 1), rng);
  EXPECT_TRUE(store.apply(op));
  EXPECT_FALSE(store.apply(op));  // same version: replay
}

TEST_F(DynamicTest, StaleUpdateRejectedByServer) {
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 1), rng)));
  const StorageOp first_update = client.update(DataBlock::from_value(0, 2), rng);
  const StorageOp second_update = client.update(DataBlock::from_value(0, 3), rng);
  EXPECT_TRUE(store.apply(second_update));
  EXPECT_FALSE(store.apply(first_update));  // older version after newer applied
}

TEST_F(DynamicTest, RollbackServerCaughtByAudit) {
  // A malicious server keeps serving the pre-update block (valid signature,
  // old version): the version check catches it.
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 1), rng)));
  DynamicServerStore rollback_store = store;  // snapshot before the update
  const StorageOp update_op = client.update(DataBlock::from_value(0, 2), rng);
  EXPECT_TRUE(store.apply(update_op));
  // `rollback_store` never applied the update.
  const auto report = verify_dynamic_storage(
      g, user_key.q_id, rollback_store, client.version_table(), all_positions(1), da_key,
      VerifierRole::kDesignatedAgency);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.stale_version_failures, 1u);
}

TEST_F(DynamicTest, ResurrectedDeletedBlockCaught) {
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 1), rng)));
  DynamicServerStore hoarder = store;  // refuses to delete
  EXPECT_TRUE(store.apply(client.remove(0, rng)));
  const auto report = verify_dynamic_storage(
      g, user_key.q_id, hoarder, client.version_table(), all_positions(1), da_key,
      VerifierRole::kDesignatedAgency);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.stale_version_failures, 1u);
}

TEST_F(DynamicTest, MissingBlockCaught) {
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 1), rng)));
  DynamicServerStore empty_store{g, server_key, user_key.q_id};
  const auto report = verify_dynamic_storage(
      g, user_key.q_id, empty_store, client.version_table(), all_positions(1), da_key,
      VerifierRole::kDesignatedAgency);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.missing_blocks, 1u);
}

TEST_F(DynamicTest, ForgedOperationRejected) {
  // An op "signed" by a different identity must not apply.
  const ibc::IdentityKey mallory = sio.extract("mallory");
  DynamicClient mallory_client(g, sio.params(), mallory, server_key.q_id, da_key.q_id);
  const StorageOp forged = mallory_client.insert(DataBlock::from_value(0, 666), rng);
  EXPECT_FALSE(store.apply(forged));  // store expects signatures from `user`
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(DynamicTest, DeleteReinsertKeepsVersionsMonotone) {
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 1), rng)));   // v1
  EXPECT_TRUE(store.apply(client.remove(0, rng)));                             // v2
  const StorageOp reinsert = client.insert(DataBlock::from_value(0, 9), rng);  // v3
  EXPECT_EQ(reinsert.version, 3u);
  EXPECT_TRUE(store.apply(reinsert));
  EXPECT_TRUE(audit(all_positions(1)).accepted);
}

TEST_F(DynamicTest, VersionedAndStaticMessagesAreDomainSeparated) {
  const DataBlock block = DataBlock::from_value(7, 42);
  EXPECT_NE(versioned_block_message(block, 1), block_message_bytes(block));
  EXPECT_NE(tombstone_message(7, 1), versioned_block_message(block, 1));
}

TEST_F(DynamicTest, ReinsertAfterDeleteRejectsPreDeleteReplays) {
  // Ops from the first life of a position must stay dead after delete +
  // re-insert: the high-water mark spans lifetimes.
  const StorageOp first_insert = client.insert(DataBlock::from_value(0, 1), rng);   // v1
  EXPECT_TRUE(store.apply(first_insert));
  const StorageOp first_update = client.update(DataBlock::from_value(0, 2), rng);   // v2
  EXPECT_TRUE(store.apply(first_update));
  EXPECT_TRUE(store.apply(client.remove(0, rng)));                                  // v3
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 9), rng)));        // v4

  EXPECT_FALSE(store.apply(first_insert));
  EXPECT_FALSE(store.apply(first_update));
  ASSERT_NE(store.lookup(0), nullptr);
  EXPECT_EQ(store.lookup(0)->version, 4u);
  EXPECT_EQ(store.lookup(0)->block.block.value(), 9u);
  EXPECT_TRUE(audit(all_positions(1)).accepted);
}

TEST_F(DynamicTest, StaleTombstoneCannotDeleteReinsertedBlock) {
  // A captured delete (valid signature!) replayed after re-insert must not
  // kill the new block — its version sits below the high-water mark.
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 1), rng)));  // v1
  const StorageOp tombstone_op = client.remove(0, rng);                       // v2
  EXPECT_TRUE(store.apply(tombstone_op));
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 5), rng)));  // v3

  EXPECT_FALSE(store.apply(tombstone_op));
  ASSERT_NE(store.lookup(0), nullptr);
  EXPECT_EQ(store.lookup(0)->version, 3u);
  EXPECT_TRUE(audit(all_positions(1)).accepted);
}

TEST_F(DynamicTest, ReplayAtExactVersionBoundaryRejected) {
  // The freshness check is strict: version == high-water is a replay, not an
  // update. The equal-version boundary is where an off-by-one would hide.
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 1), rng)));  // v1
  const StorageOp update_op = client.update(DataBlock::from_value(0, 2), rng);  // v2
  EXPECT_TRUE(store.apply(update_op));
  EXPECT_FALSE(store.apply(update_op));  // version == high-water: boundary replay
  EXPECT_EQ(store.lookup(0)->version, 2u);
  // The very next version still applies — the mark rejects <=, not <.
  EXPECT_TRUE(store.apply(client.update(DataBlock::from_value(0, 3), rng)));  // v3
  EXPECT_EQ(store.lookup(0)->version, 3u);
}

TEST_F(DynamicTest, HoarderServingPreDeleteBlockAfterReinsertCaught) {
  // A server stuck before a delete/re-insert cycle serves the old block with
  // a perfectly valid signature; the audit's version comparison catches it.
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 1), rng)));  // v1
  DynamicServerStore hoarder = store;  // snapshot at v1
  EXPECT_TRUE(store.apply(client.remove(0, rng)));                            // v2
  EXPECT_TRUE(store.apply(client.insert(DataBlock::from_value(0, 7), rng)));  // v3

  const auto report = verify_dynamic_storage(
      g, user_key.q_id, hoarder, client.version_table(), all_positions(1), da_key,
      VerifierRole::kDesignatedAgency);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.stale_version_failures, 1u);
  EXPECT_EQ(report.signature_failures, 0u);  // the signature itself is fine
  EXPECT_TRUE(audit(all_positions(1)).accepted);  // the honest store is clean
}

TEST_F(DynamicTest, TombstoneAndBlockSignaturesNeverCrossApply) {
  // Domain separation end to end: a tombstone signature smuggled into an
  // update (and a block signature smuggled into a delete) must fail the
  // server's verification even at the version the signer authorized.
  const StorageOp insert_op = client.insert(DataBlock::from_value(0, 1), rng);  // v1
  EXPECT_TRUE(store.apply(insert_op));
  const StorageOp delete_op = client.remove(0, rng);  // v2, not applied

  // "del2"‖2‖0 signature presented as an update of ("blk2"‖2‖0‖payload).
  StorageOp forged_update;
  forged_update.kind = StorageOpKind::kUpdate;
  forged_update.version = delete_op.version;
  forged_update.block.block = DataBlock::from_value(0, 666);
  forged_update.block.sig = delete_op.tombstone;
  EXPECT_FALSE(store.apply(forged_update));
  EXPECT_EQ(store.lookup(0)->block.block.value(), 1u);

  // "blk2"‖1‖0‖payload signature presented as a tombstone for ("del2"‖2‖0).
  StorageOp forged_delete;
  forged_delete.kind = StorageOpKind::kDelete;
  forged_delete.version = delete_op.version;
  forged_delete.index = 0;
  forged_delete.tombstone = insert_op.block.sig;
  EXPECT_FALSE(store.apply(forged_delete));
  ASSERT_NE(store.lookup(0), nullptr);

  // Field-order separation inside the tombstone encoding: swapping
  // (index, version) must change the message.
  EXPECT_NE(tombstone_message(1, 2), tombstone_message(2, 1));
  EXPECT_NE(versioned_block_message(DataBlock::from_value(1, 0), 2),
            versioned_block_message(DataBlock::from_value(2, 0), 1));
}

TEST_F(DynamicTest, ManyOperationsEndToEnd) {
  Xoshiro256 op_rng{4141};
  // 64 random operations over 16 positions; the audit must stay clean after
  // every applied batch.
  std::vector<bool> live(16, false);
  for (int round = 0; round < 64; ++round) {
    const std::uint64_t pos = op_rng.next_u64() % 16;
    const std::uint64_t choice = op_rng.next_u64() % 3;
    if (!live[pos]) {
      EXPECT_TRUE(store.apply(
          client.insert(DataBlock::from_value(pos, static_cast<std::uint64_t>(round)), rng)));
      live[pos] = true;
    } else if (choice == 0) {
      EXPECT_TRUE(store.apply(client.remove(pos, rng)));
      live[pos] = false;
    } else {
      EXPECT_TRUE(
          store.apply(client.update(
          DataBlock::from_value(pos, 1000 + static_cast<std::uint64_t>(round)), rng)));
    }
  }
  const auto report = audit(all_positions(16));
  EXPECT_TRUE(report.accepted);
}

}  // namespace
}  // namespace seccloud::core
