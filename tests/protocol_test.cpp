// End-to-end protocol tests: system initialization → secure storage →
// secure computation → commitment verification (Algorithm 1), including
// every cheating behaviour the adversarial model defines.
#include <gtest/gtest.h>

#include <unordered_set>

#include "ibc/keys.h"
#include "seccloud/auditor.h"
#include "seccloud/client.h"
#include "seccloud/server.h"

namespace seccloud::core {
namespace {

using ibc::IdentityKey;
using ibc::Sio;
using num::Xoshiro256;
using pairing::PairingGroup;
using pairing::tiny_group;

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest()
      : g(tiny_group()),
        rng(20100610),
        sio(g, rng),
        user_key(sio.extract("alice@example.com")),
        server_key(sio.extract("cs-01.cloud.example")),
        da_key(sio.extract("da.audit.example")),
        client(g, sio.params(), user_key, server_key.q_id, da_key.q_id) {
    // Outsource 64 numeric blocks with values 100·i.
    std::vector<DataBlock> blocks;
    for (std::uint64_t i = 0; i < 64; ++i) blocks.push_back(DataBlock::from_value(i, 100 * i));
    stored = client.sign_blocks(std::move(blocks), rng);

    // A computation task: one sub-task per window of 4 positions.
    for (std::uint64_t i = 0; i < 16; ++i) {
      ComputeRequest req;
      req.kind = static_cast<FuncKind>(i % 6);
      for (std::uint64_t j = 0; j < 4; ++j) req.positions.push_back(4 * i + j);
      task.requests.push_back(std::move(req));
    }
  }

  BlockLookup lookup() const {
    return [this](std::uint64_t index) -> const SignedBlock* {
      return index < stored.size() ? &stored[index] : nullptr;
    };
  }

  AuditReport run_audit(const TaskExecution& exec, const BlockLookup& storage,
                        std::size_t sample_size, SignatureCheckMode mode) {
    const Commitment commitment =
        make_commitment(g, exec, server_key, da_key.q_id, user_key.q_id, rng);
    const Warrant warrant = client.make_warrant(da_key.id, /*expiry_epoch=*/100, rng);
    const AuditChallenge challenge =
        make_challenge(task.requests.size(), sample_size, warrant, rng);
    const AuditResponse response = respond_to_audit(g, exec, challenge, storage,
                                                    user_key.q_id, server_key,
                                                    /*current_epoch=*/10);
    return verify_computation_audit(g, user_key.q_id, server_key.q_id, task, commitment,
                                    challenge, response, da_key, mode);
  }

  const PairingGroup& g;
  Xoshiro256 rng;
  Sio sio;
  IdentityKey user_key;
  IdentityKey server_key;
  IdentityKey da_key;
  UserClient client;
  std::vector<SignedBlock> stored;
  ComputationTask task;
};

TEST_F(ProtocolTest, StorageAuditAcceptsAuthenticBlocks) {
  for (const auto mode : {SignatureCheckMode::kIndividual, SignatureCheckMode::kBatch}) {
    const auto report =
        verify_storage_audit(g, user_key.q_id, stored, da_key, VerifierRole::kDesignatedAgency, mode);
    EXPECT_TRUE(report.accepted);
    EXPECT_EQ(report.signature_failures, 0u);
  }
}

TEST_F(ProtocolTest, CloudServerCanAlsoVerifyViaItsSigma) {
  const auto report = verify_storage_audit(g, user_key.q_id, stored, server_key,
                                           VerifierRole::kCloudServer,
                                           SignatureCheckMode::kIndividual);
  EXPECT_TRUE(report.accepted);
}

TEST_F(ProtocolTest, StorageAuditDetectsTamperedPayload) {
  auto tampered = stored;
  tampered[7].block.payload[0] ^= 0xFF;
  const auto report = verify_storage_audit(g, user_key.q_id, tampered, da_key,
                                           VerifierRole::kDesignatedAgency,
                                           SignatureCheckMode::kIndividual);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.signature_failures, 1u);
}

TEST_F(ProtocolTest, StorageAuditDetectsRelocatedBlock) {
  // Block content copied to a different position: index binding must fail.
  auto tampered = stored;
  tampered[3].block.index = 5;
  const auto report = verify_storage_audit(g, user_key.q_id, tampered, da_key,
                                           VerifierRole::kDesignatedAgency,
                                           SignatureCheckMode::kIndividual);
  EXPECT_FALSE(report.accepted);
}

TEST_F(ProtocolTest, BatchStorageAuditDetectsAndLocatesFailures) {
  auto tampered = stored;
  tampered[1].block.payload[0] ^= 1;
  tampered[9].block.payload[0] ^= 1;
  const auto report = verify_storage_audit(g, user_key.q_id, tampered, da_key,
                                           VerifierRole::kDesignatedAgency,
                                           SignatureCheckMode::kBatch);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.signature_failures, 2u);
}

TEST_F(ProtocolTest, BatchUsesOnePairingIndividualUsesMany) {
  g.reset_counters();
  (void)verify_storage_audit(g, user_key.q_id, stored, da_key,
                             VerifierRole::kDesignatedAgency, SignatureCheckMode::kBatch);
  const auto batch_ops = g.counters();
  (void)verify_storage_audit(g, user_key.q_id, stored, da_key,
                             VerifierRole::kDesignatedAgency, SignatureCheckMode::kIndividual);
  const auto individual_ops = g.counters();
  EXPECT_EQ(batch_ops.pairings, 1u);
  EXPECT_EQ(individual_ops.pairings, stored.size());
}

TEST_F(ProtocolTest, HonestComputationAuditAccepted) {
  const TaskExecution exec = execute_task_honestly(task, lookup());
  for (const auto mode : {SignatureCheckMode::kIndividual, SignatureCheckMode::kBatch}) {
    const AuditReport report = run_audit(exec, lookup(), /*sample_size=*/8, mode);
    EXPECT_TRUE(report.accepted);
    EXPECT_TRUE(report.root_signature_valid);
    EXPECT_EQ(report.signature_failures, 0u);
    EXPECT_EQ(report.computation_failures, 0u);
    EXPECT_EQ(report.root_failures, 0u);
    EXPECT_EQ(report.samples_returned, 8u);
  }
}

TEST_F(ProtocolTest, FullSamplingAuditAccepted) {
  const TaskExecution exec = execute_task_honestly(task, lookup());
  const AuditReport report =
      run_audit(exec, lookup(), task.requests.size(), SignatureCheckMode::kBatch);
  EXPECT_TRUE(report.accepted);
}

TEST_F(ProtocolTest, GuessedResultsDetectedWithFullSampling) {
  // Computation-cheating (1): the server "computes" random numbers.
  TaskExecution honest = execute_task_honestly(task, lookup());
  std::vector<std::uint64_t> guessed = honest.results();
  for (auto& y : guessed) y ^= 0x1234;
  const TaskExecution cheat{task, std::move(guessed)};
  const AuditReport report =
      run_audit(cheat, lookup(), task.requests.size(), SignatureCheckMode::kIndividual);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.computation_failures, task.requests.size());
  // The tree was built over the guessed results, so root checks pass — the
  // computation check is what catches this cheat.
  EXPECT_EQ(report.root_failures, 0u);
}

TEST_F(ProtocolTest, ResultSwapAfterCommitmentDetectedByRoot) {
  // The server commits to honest results but later reports different ones.
  const TaskExecution honest = execute_task_honestly(task, lookup());
  std::vector<std::uint64_t> swapped = honest.results();
  std::swap(swapped[0], swapped[1]);
  TaskExecution reported{task, std::move(swapped)};

  const Commitment commitment =
      make_commitment(g, honest, server_key, da_key.q_id, user_key.q_id, rng);
  const Warrant warrant = client.make_warrant(da_key.id, 100, rng);
  AuditChallenge challenge = make_challenge(task.requests.size(), task.requests.size(),
                                            warrant, rng);
  const AuditResponse response = respond_to_audit(g, reported, challenge, lookup(),
                                                  user_key.q_id, server_key, 10);
  const AuditReport report =
      verify_computation_audit(g, user_key.q_id, server_key.q_id, task, commitment,
                               challenge, response, da_key, SignatureCheckMode::kBatch);
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.root_failures, 0u);
}

TEST_F(ProtocolTest, WrongPositionDataDetectedBySignatureCheck) {
  // Computation-cheating (2): compute over x̃ from cheaper positions while
  // claiming the requested ones. The returned blocks then either carry the
  // wrong index (position mismatch) or a signature for another index.
  std::vector<SignedBlock> shifted = stored;
  for (std::size_t i = 0; i + 1 < shifted.size(); ++i) {
    shifted[i] = stored[i + 1];
    shifted[i].block.index = stored[i].block.index;  // claim the right position
  }
  const BlockLookup cheat_lookup = [&shifted](std::uint64_t index) -> const SignedBlock* {
    return index < shifted.size() ? &shifted[index] : nullptr;
  };
  const TaskExecution exec = execute_task_honestly(task, cheat_lookup);
  const AuditReport report =
      run_audit(exec, cheat_lookup, task.requests.size(), SignatureCheckMode::kIndividual);
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.signature_failures, 0u);
}

TEST_F(ProtocolTest, DeletedDataDetected) {
  // Storage-cheating: the server deleted everything past position 8 and
  // answers audits with random numbers.
  std::vector<SignedBlock> partial(stored.begin(), stored.begin() + 8);
  const BlockLookup partial_lookup = [&partial](std::uint64_t index) -> const SignedBlock* {
    return index < partial.size() ? &partial[index] : nullptr;
  };
  const TaskExecution exec = execute_task_honestly(task, lookup());  // commits honestly
  const AuditReport report =
      run_audit(exec, partial_lookup, task.requests.size(), SignatureCheckMode::kIndividual);
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.signature_failures, 0u);
}

TEST_F(ProtocolTest, ExpiredWarrantRejectedByServer) {
  const TaskExecution exec = execute_task_honestly(task, lookup());
  const Warrant warrant = client.make_warrant(da_key.id, /*expiry_epoch=*/5, rng);
  const AuditChallenge challenge = make_challenge(task.requests.size(), 4, warrant, rng);
  const AuditResponse response = respond_to_audit(g, exec, challenge, lookup(),
                                                  user_key.q_id, server_key,
                                                  /*current_epoch=*/10);
  EXPECT_FALSE(response.warrant_accepted);
  const Commitment commitment =
      make_commitment(g, exec, server_key, da_key.q_id, user_key.q_id, rng);
  const AuditReport report =
      verify_computation_audit(g, user_key.q_id, server_key.q_id, task, commitment,
                               challenge, response, da_key, SignatureCheckMode::kBatch);
  EXPECT_FALSE(report.accepted);
  EXPECT_TRUE(report.warrant_rejected);
}

TEST_F(ProtocolTest, ForgedWarrantRejected) {
  // A warrant "signed" by someone who is not the user.
  const IdentityKey mallory = sio.extract("mallory@example.com");
  const UserClient mallory_client(g, sio.params(), mallory, server_key.q_id, da_key.q_id);
  Warrant warrant = mallory_client.make_warrant(da_key.id, 100, rng);
  warrant.delegator_id = user_key.id;  // claims to be alice
  EXPECT_FALSE(warrant_valid(g, user_key.q_id, warrant, server_key, 10));
}

TEST_F(ProtocolTest, DroppedSamplesCountAsFailures) {
  const TaskExecution exec = execute_task_honestly(task, lookup());
  const Commitment commitment =
      make_commitment(g, exec, server_key, da_key.q_id, user_key.q_id, rng);
  const Warrant warrant = client.make_warrant(da_key.id, 100, rng);
  const AuditChallenge challenge = make_challenge(task.requests.size(), 6, warrant, rng);
  AuditResponse response =
      respond_to_audit(g, exec, challenge, lookup(), user_key.q_id, server_key, 10);
  response.items.pop_back();  // server silently drops one sample
  const AuditReport report =
      verify_computation_audit(g, user_key.q_id, server_key.q_id, task, commitment,
                               challenge, response, da_key, SignatureCheckMode::kBatch);
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.root_failures, 0u);
}

TEST_F(ProtocolTest, UserCanVerifyRootSignatureDirectly) {
  const TaskExecution exec = execute_task_honestly(task, lookup());
  const Commitment commitment =
      make_commitment(g, exec, server_key, da_key.q_id, user_key.q_id, rng);
  EXPECT_TRUE(client.verify_root_signature(server_key.q_id, commitment));
  Commitment bad = commitment;
  bad.root[0] ^= 1;
  EXPECT_FALSE(client.verify_root_signature(server_key.q_id, bad));
}

TEST_F(ProtocolTest, SampleIndicesAreUniqueAndInRange) {
  for (int round = 0; round < 20; ++round) {
    const auto s = sample_indices(50, 20, rng);
    ASSERT_EQ(s.size(), 20u);
    std::unordered_set<std::uint64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), s.size());
    for (const auto v : s) EXPECT_LT(v, 50u);
  }
  EXPECT_EQ(sample_indices(5, 50, rng).size(), 5u);  // clamped
}

}  // namespace
}  // namespace seccloud::core
