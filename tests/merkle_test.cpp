// Merkle-hash-tree tests: construction, audit paths, tamper detection,
// proof serialization; sweeps over leaf counts including non-powers of two.
#include <gtest/gtest.h>

#include <string>

#include "merkle/tree.h"

namespace seccloud::merkle {
namespace {

std::vector<Digest> make_leaves(std::size_t n) {
  std::vector<Digest> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string data = "leaf-" + std::to_string(i);
    leaves.push_back(MerkleTree::leaf_hash(
        std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                      data.size())));
  }
  return leaves;
}

TEST(Merkle, EmptyLeafSetThrows) {
  EXPECT_THROW(MerkleTree::build({}), std::invalid_argument);
}

TEST(Merkle, SingleLeafRootIsTheLeaf) {
  const auto leaves = make_leaves(1);
  const MerkleTree tree = MerkleTree::build(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  EXPECT_TRUE(tree.prove(0).empty());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[0], {}));
}

TEST(Merkle, TwoLeavesMatchNodeRule) {
  const auto leaves = make_leaves(2);
  const MerkleTree tree = MerkleTree::build(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::node_hash(leaves[0], leaves[1]));
}

TEST(Merkle, Figure3EightLeafShape) {
  // The paper's Figure 3: 8 leaves; the path for leaf 3 (f4) carries the
  // sibling set {v3, A, F} — i.e. exactly log2(8) = 3 nodes.
  const auto leaves = make_leaves(8);
  const MerkleTree tree = MerkleTree::build(leaves);
  const Proof proof = tree.prove(3);
  ASSERT_EQ(proof.size(), 3u);
  EXPECT_EQ(proof[0].sibling, leaves[2]);  // v3 (0-indexed: leaf 2)
  EXPECT_TRUE(proof[0].sibling_on_left);
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[3], proof));
}

TEST(Merkle, DomainSeparationLeafVsNode) {
  // A leaf hash of 64 bytes must not equal a node hash of the same bytes.
  const auto leaves = make_leaves(2);
  std::vector<std::uint8_t> concat;
  concat.insert(concat.end(), leaves[0].begin(), leaves[0].end());
  concat.insert(concat.end(), leaves[1].begin(), leaves[1].end());
  EXPECT_NE(MerkleTree::leaf_hash(concat), MerkleTree::node_hash(leaves[0], leaves[1]));
}

TEST(Merkle, ProveOutOfRangeThrows) {
  const MerkleTree tree = MerkleTree::build(make_leaves(4));
  EXPECT_THROW(tree.prove(4), std::out_of_range);
}

class MerkleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSweep, AllProofsVerify) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree = MerkleTree::build(leaves);
  EXPECT_EQ(tree.leaf_count(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], tree.prove(i))) << "leaf " << i;
  }
}

TEST_P(MerkleSweep, WrongLeafFailsEveryProof) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree = MerkleTree::build(leaves);
  Digest wrong = leaves[0];
  wrong[0] ^= 0x01;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(MerkleTree::verify(tree.root(), wrong, tree.prove(i)));
  }
}

TEST_P(MerkleSweep, ProofForWrongPositionFails) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const auto leaves = make_leaves(n);
  const MerkleTree tree = MerkleTree::build(leaves);
  // leaf i with the proof for leaf j != i must not verify.
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[0], tree.prove(1)));
}

TEST_P(MerkleSweep, TamperedSiblingFails) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const auto leaves = make_leaves(n);
  const MerkleTree tree = MerkleTree::build(leaves);
  Proof proof = tree.prove(0);
  ASSERT_FALSE(proof.empty());
  proof[0].sibling[5] ^= 0xFF;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[0], proof));
}

TEST_P(MerkleSweep, ProofSizeIsLogarithmic) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree = MerkleTree::build(leaves);
  std::size_t ceil_log2 = 0;
  while ((1u << ceil_log2) < n) ++ceil_log2;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(tree.prove(i).size(), ceil_log2);
  }
}

TEST_P(MerkleSweep, ProofSerializationRoundTrip) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  const MerkleTree tree = MerkleTree::build(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const Proof proof = tree.prove(i);
    const auto bytes = MerkleTree::serialize_proof(proof);
    const auto back = MerkleTree::deserialize_proof(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, proof);
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 100,
                                           255, 256, 257));

TEST(Merkle, DeserializeRejectsMalformed) {
  EXPECT_FALSE(MerkleTree::deserialize_proof(std::vector<std::uint8_t>(10, 0)).has_value());
  std::vector<std::uint8_t> bad(33, 0);
  bad[0] = 2;  // invalid direction flag
  EXPECT_FALSE(MerkleTree::deserialize_proof(bad).has_value());
  EXPECT_TRUE(MerkleTree::deserialize_proof({}).has_value());  // empty proof is valid
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  const auto leaves = make_leaves(16);
  const MerkleTree tree = MerkleTree::build(leaves);
  for (std::size_t i = 0; i < 16; ++i) {
    auto mutated = leaves;
    mutated[i][31] ^= 1;
    EXPECT_NE(MerkleTree::build(mutated).root(), tree.root()) << "leaf " << i;
  }
}

}  // namespace
}  // namespace seccloud::merkle
