// Prime-field and quadratic-extension tests: field axioms as property
// sweeps, Barrett-reduction edge cases, square roots.
#include <gtest/gtest.h>

#include "field/fp.h"
#include "field/fp2.h"
#include "pairing/params.h"

namespace seccloud::field {
namespace {

using num::BigUint;
using num::Xoshiro256;

class FpProperty : public ::testing::TestWithParam<const char*> {
 protected:
  FpProperty() : fp(BigUint::from_hex(GetParam())), rng(99) {}
  PrimeField fp;
  Xoshiro256 rng;
};

TEST_P(FpProperty, AdditionGroupLaws) {
  for (int i = 0; i < 30; ++i) {
    const BigUint a = fp.random(rng);
    const BigUint b = fp.random(rng);
    const BigUint c = fp.random(rng);
    EXPECT_EQ(fp.add(a, b), fp.add(b, a));
    EXPECT_EQ(fp.add(fp.add(a, b), c), fp.add(a, fp.add(b, c)));
    EXPECT_EQ(fp.add(a, fp.neg(a)), BigUint{});
    EXPECT_EQ(fp.sub(a, b), fp.add(a, fp.neg(b)));
  }
}

TEST_P(FpProperty, MultiplicationLaws) {
  for (int i = 0; i < 30; ++i) {
    const BigUint a = fp.random(rng);
    const BigUint b = fp.random(rng);
    const BigUint c = fp.random(rng);
    EXPECT_EQ(fp.mul(a, b), fp.mul(b, a));
    EXPECT_EQ(fp.mul(fp.mul(a, b), c), fp.mul(a, fp.mul(b, c)));
    EXPECT_EQ(fp.mul(a, fp.add(b, c)), fp.add(fp.mul(a, b), fp.mul(a, c)));
    EXPECT_EQ(fp.sqr(a), fp.mul(a, a));
  }
}

TEST_P(FpProperty, BarrettMatchesNaiveReduction) {
  for (int i = 0; i < 100; ++i) {
    const BigUint a = fp.random(rng);
    const BigUint b = fp.random(rng);
    EXPECT_EQ(fp.mul(a, b), (a * b) % fp.modulus());
  }
}

TEST_P(FpProperty, BarrettEdgeCases) {
  const BigUint p = fp.modulus();
  const BigUint p_1 = p - BigUint{1};
  EXPECT_EQ(fp.mul(p_1, p_1), (p_1 * p_1) % p);  // largest product
  EXPECT_EQ(fp.mul(BigUint{}, p_1), BigUint{});
  EXPECT_EQ(fp.mul(BigUint{1}, p_1), p_1);
  EXPECT_EQ(fp.reduce(p), BigUint{});
  EXPECT_EQ(fp.reduce(p + BigUint{1}), BigUint{1});
  // reduce() beyond p^2 falls back to full division.
  EXPECT_EQ(fp.reduce(p * p * p + BigUint{5}), BigUint{5});
}

TEST_P(FpProperty, InverseRoundTrip) {
  for (int i = 0; i < 30; ++i) {
    BigUint a = fp.random(rng);
    if (a.is_zero()) a += 1u;
    const auto inv = fp.inv(a);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(fp.mul(a, *inv), BigUint{1});
  }
  EXPECT_FALSE(fp.inv(BigUint{}).has_value());
}

TEST_P(FpProperty, PowMatchesRepeatedMul) {
  const BigUint a = fp.random(rng);
  BigUint acc{1};
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(fp.pow(a, BigUint{e}), acc);
    acc = fp.mul(acc, a);
  }
}

TEST_P(FpProperty, SqrtOfSquares) {
  for (int i = 0; i < 30; ++i) {
    const BigUint a = fp.random(rng);
    const BigUint square = fp.sqr(a);
    const auto root = fp.sqrt(square);
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == fp.neg(a));
  }
}

TEST_P(FpProperty, SqrtRejectsNonResidues) {
  // Exactly half the nonzero elements are QRs; count over a sample.
  int residues = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    BigUint a = fp.random(rng);
    if (a.is_zero()) continue;
    if (fp.sqrt(a).has_value()) ++residues;
  }
  EXPECT_GT(residues, trials / 4);
  EXPECT_LT(residues, 3 * trials / 4);
}


TEST_P(FpProperty, BatchInversionMatchesSingle) {
  std::vector<BigUint> values;
  for (int i = 0; i < 17; ++i) {
    BigUint v = fp.random(rng);
    if (v.is_zero()) v += 1u;
    values.push_back(std::move(v));
  }
  const auto batch = fp.inv_batch(values);
  ASSERT_EQ(batch.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(batch[i], *fp.inv(values[i]));
  }
}

TEST_P(FpProperty, BatchInversionEdges) {
  EXPECT_TRUE(fp.inv_batch({}).empty());
  const std::vector<BigUint> one{BigUint{1}};
  EXPECT_EQ(fp.inv_batch(one).at(0), BigUint{1});
  const std::vector<BigUint> with_zero{BigUint{1}, BigUint{}};
  EXPECT_THROW(fp.inv_batch(with_zero), std::domain_error);
}

INSTANTIATE_TEST_SUITE_P(
    Moduli, FpProperty,
    ::testing::Values(
        "7",
        "fffffffb",                          // 32-bit prime ≡ 3 (mod 4)
        "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",  // P-256
        "b7310e862efdfa3df84ca43f1e167c67802b80efc019a0f6ee55a30059ccffb4"
        "4e02bfe78b9182024ef8b78563010f4d6eaa581df379f1e9fcd912a61fa26b6f",   // SS512
        // p ≡ 1 (mod 4): sqrt runs Tonelli–Shanks instead of the
        // a^((p+1)/4) shortcut.
        "d",                                 // 13
        "ffffffffffffffc5",                  // 2^64 − 59
        "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed"));  // 2^255 − 19

TEST(PrimeField, RejectsBadModulus) {
  EXPECT_THROW(PrimeField{BigUint{1}}, std::invalid_argument);
  EXPECT_THROW(PrimeField{BigUint{8}}, std::invalid_argument);
}

TEST(PrimeFieldSqrt, TonelliShanksKnownRoots) {
  // p = 13 ≡ 1 (mod 4): QRs are {1, 3, 4, 9, 10, 12}.
  const PrimeField f13{BigUint{13}};
  EXPECT_EQ(f13.sqrt(BigUint{}), BigUint{});  // sqrt(0) = 0
  for (const std::uint64_t qr : {1ull, 3ull, 4ull, 9ull, 10ull, 12ull}) {
    const auto root = f13.sqrt(BigUint{qr});
    ASSERT_TRUE(root.has_value()) << qr;
    EXPECT_EQ(f13.sqr(*root), BigUint{qr});
  }
  for (const std::uint64_t nqr : {2ull, 5ull, 6ull, 7ull, 8ull, 11ull}) {
    EXPECT_FALSE(f13.sqrt(BigUint{nqr}).has_value()) << nqr;
  }

  // Large p ≡ 1 (mod 4) with a deep 2-adic tower: 2^64 − 59 has
  // p − 1 = q·2^s with s > 1, exercising the order-reduction loop.
  const PrimeField f64{BigUint::from_hex("ffffffffffffffc5")};
  num::Xoshiro256 rng{11};
  int residues = 0;
  for (int i = 0; i < 40; ++i) {
    const BigUint a = f64.random(rng);
    const BigUint sq = f64.sqr(a);
    const auto root = f64.sqrt(sq);
    ASSERT_TRUE(root.has_value());
    EXPECT_EQ(f64.sqr(*root), sq);
    if (f64.sqrt(a).has_value()) ++residues;
  }
  EXPECT_GT(residues, 5);   // non-residues → nullopt, not a wrong root
  EXPECT_LT(residues, 35);
}

TEST(PrimeFieldSqrt, CompositeModulusWithoutNonResidueThrows) {
  // 9 ≡ 1 (mod 4) but (Z/9)* has no element of order 2 under Euler's
  // criterion (z^4 mod 9 never equals 8), so construction finds no
  // non-residue and sqrt must report that instead of looping forever.
  const PrimeField f9{BigUint{9}};
  EXPECT_THROW(f9.sqrt(BigUint{7}), std::logic_error);
}

class Fp2Test : public ::testing::Test {
 protected:
  Fp2Test() : fp(pairing::tiny_params().p), f2(fp), rng(7) {}
  PrimeField fp;
  Fp2Field f2;
  Xoshiro256 rng;
};

TEST_F(Fp2Test, FieldLaws) {
  for (int i = 0; i < 30; ++i) {
    const Fp2 a = f2.random(rng);
    const Fp2 b = f2.random(rng);
    const Fp2 c = f2.random(rng);
    EXPECT_EQ(f2.mul(a, b), f2.mul(b, a));
    EXPECT_EQ(f2.mul(f2.mul(a, b), c), f2.mul(a, f2.mul(b, c)));
    EXPECT_EQ(f2.mul(a, f2.add(b, c)), f2.add(f2.mul(a, b), f2.mul(a, c)));
    EXPECT_EQ(f2.sqr(a), f2.mul(a, a));
    EXPECT_EQ(f2.add(a, f2.neg(a)), f2.zero());
  }
}

TEST_F(Fp2Test, ImaginaryUnitSquaresToMinusOne) {
  const Fp2 i{num::BigUint{}, num::BigUint{1}};
  const Fp2 minus_one{fp.neg(num::BigUint{1}), num::BigUint{}};
  EXPECT_EQ(f2.sqr(i), minus_one);
}

TEST_F(Fp2Test, InverseRoundTrip) {
  for (int i = 0; i < 30; ++i) {
    Fp2 a = f2.random(rng);
    if (f2.is_zero(a)) a = f2.one();
    const auto inv = f2.inv(a);
    ASSERT_TRUE(inv.has_value());
    EXPECT_TRUE(f2.is_one(f2.mul(a, *inv)));
  }
  EXPECT_FALSE(f2.inv(f2.zero()).has_value());
}

TEST_F(Fp2Test, ConjugateIsFrobenius) {
  // x^p == conj(x) in F_{p^2}.
  for (int i = 0; i < 5; ++i) {
    const Fp2 a = f2.random(rng);
    EXPECT_EQ(f2.pow(a, fp.modulus()), f2.conj(a));
  }
}

TEST_F(Fp2Test, PowAddsExponents) {
  const Fp2 a = f2.random(rng);
  const num::BigUint e1{123};
  const num::BigUint e2{456};
  EXPECT_EQ(f2.mul(f2.pow(a, e1), f2.pow(a, e2)), f2.pow(a, e1 + e2));
}

TEST_F(Fp2Test, RequiresThreeModFour) {
  PrimeField bad{num::BigUint{5}};  // 5 ≡ 1 (mod 4)
  EXPECT_THROW(Fp2Field{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace seccloud::field
