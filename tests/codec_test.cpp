// Wire-codec tests: round trips for every protocol message, malformed-input
// rejection (truncation, bad tags, off-curve points, trailing garbage), and
// a truncation sweep that feeds every prefix of a valid encoding back in.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "ibc/keys.h"
#include "seccloud/auditor.h"
#include "seccloud/client.h"
#include "seccloud/codec.h"
#include "seccloud/server.h"

namespace seccloud::core {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;

class CodecTest : public ::testing::Test {
 protected:
  CodecTest()
      : g(tiny_group()),
        rng(808),
        sio(g, rng),
        user_key(sio.extract("user")),
        server_key(sio.extract("server")),
        da_key(sio.extract("da")),
        client(g, sio.params(), user_key, server_key.q_id, da_key.q_id) {
    for (std::uint64_t i = 0; i < 12; ++i) {
      blocks.push_back(client.sign_block(DataBlock::from_value(i, 31 * i), rng));
    }
    for (std::uint64_t i = 0; i < 4; ++i) {
      ComputeRequest req;
      req.kind = static_cast<FuncKind>(i % 6);
      for (std::uint64_t j = 0; j < 3; ++j) req.positions.push_back(3 * i + j);
      task.requests.push_back(std::move(req));
    }
  }

  BlockLookup lookup() const {
    return [this](std::uint64_t index) -> const SignedBlock* {
      return index < blocks.size() ? &blocks[index] : nullptr;
    };
  }

  const pairing::PairingGroup& g;
  Xoshiro256 rng;
  ibc::Sio sio;
  ibc::IdentityKey user_key;
  ibc::IdentityKey server_key;
  ibc::IdentityKey da_key;
  UserClient client;
  std::vector<SignedBlock> blocks;
  ComputationTask task;
};

TEST_F(CodecTest, SignedBlockRoundTrip) {
  for (const auto& sb : blocks) {
    const Bytes wire = encode_signed_block(g, sb);
    const auto back = decode_signed_block(g, wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, sb);
  }
}

TEST_F(CodecTest, SignedBlockSurvivesReverification) {
  // A decoded block must still verify — the codec preserves the crypto.
  const Bytes wire = encode_signed_block(g, blocks[3]);
  const auto back = decode_signed_block(g, wire);
  ASSERT_TRUE(back.has_value());
  const auto report = verify_storage_audit(g, user_key.q_id, std::vector{*back}, da_key,
                                           VerifierRole::kDesignatedAgency,
                                           SignatureCheckMode::kIndividual);
  EXPECT_TRUE(report.accepted);
}

TEST_F(CodecTest, SignedBlockTruncationSweep) {
  const Bytes wire = encode_signed_block(g, blocks[0]);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_signed_block(g, std::span(wire.data(), len)).has_value())
        << "prefix " << len;
  }
}

TEST_F(CodecTest, SignedBlockTrailingGarbageRejected) {
  Bytes wire = encode_signed_block(g, blocks[0]);
  wire.push_back(0x00);
  EXPECT_FALSE(decode_signed_block(g, wire).has_value());
}

TEST_F(CodecTest, SignedBlockOffCurvePointRejected) {
  Bytes wire = encode_signed_block(g, blocks[0]);
  // The point U starts right after index (8) + payload length (4) + payload.
  const std::size_t point_offset = 8 + 4 + blocks[0].block.payload.size();
  ASSERT_EQ(wire[point_offset], 0x04);
  wire[point_offset + 1] ^= 0xFF;  // corrupt X: overwhelmingly off-curve
  const auto back = decode_signed_block(g, wire);
  if (back.has_value()) {
    // Astronomically unlikely, but if still on-curve the signature must fail.
    EXPECT_NE(*back, blocks[0]);
  }
}

TEST_F(CodecTest, TaskRoundTrip) {
  const Bytes wire = encode_task(g, task);
  const auto back = decode_task(g, wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->requests, task.requests);
}

TEST_F(CodecTest, TaskRejectsUnknownFunctionKind) {
  Bytes wire = encode_task(g, task);
  wire[4] = 0xEE;  // first request's kind byte
  EXPECT_FALSE(decode_task(g, wire).has_value());
}

TEST_F(CodecTest, CommitmentRoundTrip) {
  const TaskExecution exec = execute_task_honestly(task, lookup());
  const Commitment commitment =
      make_commitment(g, exec, server_key, da_key.q_id, user_key.q_id, rng);
  const Bytes wire = encode_commitment(g, commitment);
  const auto back = decode_commitment(g, wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->results, commitment.results);
  EXPECT_EQ(back->root, commitment.root);
  EXPECT_EQ(back->root_sig_da, commitment.root_sig_da);
  EXPECT_EQ(back->root_sig_user, commitment.root_sig_user);
  // The decoded root signature still verifies for the user.
  EXPECT_TRUE(client.verify_root_signature(server_key.q_id, *back));
}

TEST_F(CodecTest, WarrantRoundTripAndStillValid) {
  const Warrant warrant = client.make_warrant(da_key.id, 77, rng);
  const Bytes wire = encode_warrant(g, warrant);
  const auto back = decode_warrant(g, wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->delegator_id, warrant.delegator_id);
  EXPECT_EQ(back->delegatee_id, warrant.delegatee_id);
  EXPECT_EQ(back->expiry_epoch, warrant.expiry_epoch);
  EXPECT_TRUE(warrant_valid(g, user_key.q_id, *back, server_key, 50));
}

TEST_F(CodecTest, ChallengeRoundTrip) {
  const Warrant warrant = client.make_warrant(da_key.id, 77, rng);
  const AuditChallenge challenge = make_challenge(task.requests.size(), 3, warrant, rng);
  const Bytes wire = encode_challenge(g, challenge);
  const auto back = decode_challenge(g, wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sample_indices, challenge.sample_indices);
  EXPECT_EQ(back->warrant.expiry_epoch, challenge.warrant.expiry_epoch);
}

TEST_F(CodecTest, ResponseRoundTripAndAuditStillPasses) {
  const TaskExecution exec = execute_task_honestly(task, lookup());
  const Commitment commitment =
      make_commitment(g, exec, server_key, da_key.q_id, user_key.q_id, rng);
  const Warrant warrant = client.make_warrant(da_key.id, 77, rng);
  const AuditChallenge challenge = make_challenge(task.requests.size(), 3, warrant, rng);
  const AuditResponse response =
      respond_to_audit(g, exec, challenge, lookup(), user_key.q_id, server_key, 1);

  // Full wire round trip of both challenge and response, then verify.
  const auto challenge2 = decode_challenge(g, encode_challenge(g, challenge));
  const auto response2 = decode_response(g, encode_response(g, response));
  ASSERT_TRUE(challenge2.has_value());
  ASSERT_TRUE(response2.has_value());
  const AuditReport report =
      verify_computation_audit(g, user_key.q_id, server_key.q_id, task, commitment,
                               *challenge2, *response2, da_key, SignatureCheckMode::kBatch);
  EXPECT_TRUE(report.accepted);
}

TEST_F(CodecTest, ResponseTruncationSweepCoarse) {
  const TaskExecution exec = execute_task_honestly(task, lookup());
  const Warrant warrant = client.make_warrant(da_key.id, 77, rng);
  const AuditChallenge challenge = make_challenge(task.requests.size(), 2, warrant, rng);
  const AuditResponse response =
      respond_to_audit(g, exec, challenge, lookup(), user_key.q_id, server_key, 1);
  const Bytes wire = encode_response(g, response);
  for (std::size_t len = 0; len < wire.size(); len += 7) {
    EXPECT_FALSE(decode_response(g, std::span(wire.data(), len)).has_value());
  }
}

TEST_F(CodecTest, GtValuesOutsideFieldRejected) {
  // Hand-craft a signed block whose Σ real part equals p (invalid residue).
  Bytes wire = encode_signed_block(g, blocks[0]);
  const std::size_t w = (g.params().p.bit_length() + 7) / 8;
  const std::size_t point_size = 1 + 2 * w;
  const std::size_t sigma_offset = 8 + 4 + blocks[0].block.payload.size() + point_size;
  const auto p_bytes = g.params().p.to_bytes(w);
  std::copy(p_bytes.begin(), p_bytes.end(),
            wire.begin() + static_cast<std::ptrdiff_t>(sigma_offset));
  EXPECT_FALSE(decode_signed_block(g, wire).has_value());
}

TEST_F(CodecTest, EncoderPrimitivesRoundTrip) {
  Encoder enc{g};
  enc.put_u8(0xAB);
  enc.put_u32(0xDEADBEEF);
  enc.put_u64(0x0123456789ABCDEFull);
  enc.put_string("hello");
  enc.put_point(g.generator());
  enc.put_point(Point::at_infinity());
  const Bytes wire = std::move(enc).take();

  Decoder dec{g, wire};
  EXPECT_EQ(dec.get_u8().value(), 0xAB);
  EXPECT_EQ(dec.get_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.get_u64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.get_string().value(), "hello");
  EXPECT_EQ(dec.get_point().value(), g.generator());
  EXPECT_TRUE(dec.get_point().value().infinity);
  EXPECT_TRUE(dec.exhausted());
}

TEST_F(CodecTest, VarBytesLengthLimitEnforced) {
  Encoder enc{g};
  enc.put_var_bytes(Bytes(100, 0x77));
  const Bytes wire = std::move(enc).take();
  Decoder dec{g, wire};
  EXPECT_FALSE(dec.get_var_bytes(/*max_len=*/50).has_value());
}

}  // namespace
}  // namespace seccloud::core

// --- allocation-bounded malformed-input regressions ------------------------
//
// A handful of header bytes must not be able to force the decoders into
// multi-megabyte reserve() calls: capacity growth has to stay proportional
// to the bytes actually supplied. The global operator new is instrumented
// (binary-wide; gtest's own bookkeeping allocations are negligible next to
// the megabytes a regression would show).

namespace {
std::atomic<std::size_t> g_bytes_allocated{0};
}  // namespace

void* operator new(std::size_t size) {
  g_bytes_allocated.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seccloud::core {
namespace {

constexpr std::size_t kAllocationBound = 64u * 1024;  // far below the ~MBs a bug costs

TEST_F(CodecTest, DecodeTaskHugeCountHeaderRejectedWithoutAllocation) {
  Encoder enc{g};
  enc.put_u32(1u << 20);  // claims a million requests...
  enc.put_u8(0);          // ...but supplies one byte
  const Bytes wire = std::move(enc).take();
  ASSERT_EQ(wire.size(), 5u);
  const std::size_t before = g_bytes_allocated.load();
  EXPECT_FALSE(decode_task(g, wire).has_value());
  EXPECT_LT(g_bytes_allocated.load() - before, kAllocationBound)
      << "decoder reserved capacity for a count the input cannot contain";
}

TEST_F(CodecTest, DecodeTaskHugePositionCountRejectedWithoutAllocation) {
  Encoder enc{g};
  enc.put_u32(1);         // one request
  enc.put_u8(0);          // kind
  enc.put_u32(1u << 20);  // a million positions, zero bytes behind them
  const Bytes wire = std::move(enc).take();
  const std::size_t before = g_bytes_allocated.load();
  EXPECT_FALSE(decode_task(g, wire).has_value());
  EXPECT_LT(g_bytes_allocated.load() - before, kAllocationBound);
}

TEST_F(CodecTest, DecodeCommitmentHugeCountRejectedWithoutAllocation) {
  Encoder enc{g};
  enc.put_u32(1u << 24);  // claims 16M results in a 4-byte message
  const Bytes wire = std::move(enc).take();
  const std::size_t before = g_bytes_allocated.load();
  EXPECT_FALSE(decode_commitment(g, wire).has_value());
  EXPECT_LT(g_bytes_allocated.load() - before, kAllocationBound);
}

TEST_F(CodecTest, DecodeChallengeHugeCountRejectedWithoutAllocation) {
  Encoder enc{g};
  enc.put_u32(1u << 20);
  const Bytes wire = std::move(enc).take();
  const std::size_t before = g_bytes_allocated.load();
  EXPECT_FALSE(decode_challenge(g, wire).has_value());
  EXPECT_LT(g_bytes_allocated.load() - before, kAllocationBound);
}

TEST_F(CodecTest, DecodeResponseHugeItemCountRejectedWithoutAllocation) {
  Encoder enc{g};
  enc.put_u8(1);          // warrant accepted
  enc.put_u32(1u << 20);  // a million items in a 5-byte message
  const Bytes wire = std::move(enc).take();
  const std::size_t before = g_bytes_allocated.load();
  EXPECT_FALSE(decode_response(g, wire).has_value());
  EXPECT_LT(g_bytes_allocated.load() - before, kAllocationBound);
}

TEST_F(CodecTest, DecodeResponseHugeInputCountRejectedWithoutAllocation) {
  Encoder enc{g};
  enc.put_u8(1);
  enc.put_u32(1);         // one item
  enc.put_u64(0);         // request index
  enc.put_u64(0);         // result
  enc.put_u32(1u << 16);  // 65536 input blocks, zero bytes behind them
  const Bytes wire = std::move(enc).take();
  const std::size_t before = g_bytes_allocated.load();
  EXPECT_FALSE(decode_response(g, wire).has_value());
  EXPECT_LT(g_bytes_allocated.load() - before, kAllocationBound);
}

TEST_F(CodecTest, PlausibleCountsStillDecode) {
  // The fail-fast bound must not reject honest encodings: re-run a round
  // trip whose counts sit exactly at what the remaining bytes can encode.
  const Bytes wire = encode_task(g, task);
  const auto back = decode_task(g, wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->requests.size(), task.requests.size());
}

}  // namespace
}  // namespace seccloud::core
