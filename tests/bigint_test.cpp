// BigUint / modular-arithmetic / primality / RNG unit and property tests.
#include <gtest/gtest.h>

#include "bigint/biguint.h"
#include "bigint/modular.h"
#include "bigint/primality.h"
#include "bigint/rng.h"

namespace seccloud::num {
namespace {

TEST(BigUint, DefaultIsZero) {
  const BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_dec(), "0");
}

TEST(BigUint, HexRoundTrip) {
  const char* cases[] = {"1", "ff", "deadbeef", "123456789abcdef0",
                         "ffffffffffffffffffffffffffffffff",
                         "1000000000000000000000000000000000000001"};
  for (const auto* hex : cases) {
    EXPECT_EQ(BigUint::from_hex(hex).to_hex(), hex);
  }
}

TEST(BigUint, HexAcceptsPrefixAndUppercase) {
  EXPECT_EQ(BigUint::from_hex("0xDEADBEEF"), BigUint::from_hex("deadbeef"));
}

TEST(BigUint, HexRejectsGarbage) {
  EXPECT_THROW(BigUint::from_hex(""), std::invalid_argument);
  EXPECT_THROW(BigUint::from_hex("xyz"), std::invalid_argument);
}

TEST(BigUint, DecimalRoundTrip) {
  const char* cases[] = {"0", "7", "18446744073709551615", "18446744073709551616",
                         "340282366920938463463374607431768211456"};
  for (const auto* dec : cases) {
    EXPECT_EQ(BigUint::from_dec(dec).to_dec(), dec);
  }
}

TEST(BigUint, BytesRoundTrip) {
  Xoshiro256 rng{3};
  for (int i = 0; i < 50; ++i) {
    const BigUint v = rng.next_bits(1 + static_cast<std::size_t>(rng.next_u64() % 300));
    const auto bytes = v.to_bytes();
    EXPECT_EQ(BigUint::from_bytes(bytes), v);
  }
}

TEST(BigUint, FixedWidthBytesPadAndReject) {
  const BigUint v{0xABCD};
  const auto wide = v.to_bytes(8);
  EXPECT_EQ(wide.size(), 8u);
  EXPECT_EQ(wide[6], 0xAB);
  EXPECT_EQ(wide[7], 0xCD);
  EXPECT_THROW(v.to_bytes(1), std::length_error);
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
  const BigUint a = BigUint::from_hex("ffffffffffffffff");
  EXPECT_EQ((a + BigUint{1}).to_hex(), "10000000000000000");
  const BigUint b = BigUint::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((b + BigUint{1}).to_hex(), "100000000000000000000000000000000");
}

TEST(BigUint, SubtractionBorrowsAcrossLimbs) {
  const BigUint a = BigUint::from_hex("10000000000000000");
  EXPECT_EQ((a - BigUint{1}).to_hex(), "ffffffffffffffff");
}

TEST(BigUint, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUint{1} - BigUint{2}, std::underflow_error);
}

TEST(BigUint, MultiplicationKnownValues) {
  const BigUint a = BigUint::from_dec("123456789123456789");
  const BigUint b = BigUint::from_dec("987654321987654321");
  EXPECT_EQ((a * b).to_dec(), "121932631356500531347203169112635269");
}

TEST(BigUint, DivisionKnownValues) {
  const BigUint a = BigUint::from_dec("121932631356500531347203169112635270");
  const BigUint b = BigUint::from_dec("987654321987654321");
  const auto [q, r] = BigUint::divmod(a, b);
  EXPECT_EQ(q.to_dec(), "123456789123456789");
  EXPECT_EQ(r.to_dec(), "1");
}

TEST(BigUint, DivmodAddBackBranch) {
  // Crafted TAOCP 4.3.1-D vectors where the two-limb q̂ estimate survives the
  // v_next pre-correction but still overshoots by one, forcing the add-back
  // branch (step D6) — a path random operands essentially never reach (it
  // needs a ≥3-limb divisor whose low limbs conspire against q̂). Expected
  // quotients/remainders verified against an independent implementation.
  struct Vector {
    std::vector<std::uint64_t> u, v;  // little-endian limbs
    const char* q_hex;
    const char* r_hex;
  };
  const Vector vectors[] = {
      {{0xffffffffffffffffull, 0x8000000000000001ull, 0x8000000000000001ull,
        0x7fffffffffffffffull},
       {0xfffffffffffffffeull, 0x1ull, 0x8000000000000000ull},
       "fffffffffffffffe",
       "7fffffffffffffff8000000000000007fffffffffffffffb"},
      {{0x2ull, 0x0ull, 0xffffffffffffffffull, 0x8000000000000000ull},
       {0xfffffffffffffffeull, 0xfffffffffffffffeull, 0xffffffffffffffffull},
       "8000000000000000",
       "ffffffffffffffff80000000000000010000000000000002"},
      {{0x7fffffffffffffffull, 0x1ull, 0xfffffffffffffffeull},
       {0xfffffffffffffffeull, 0x0ull, 0x7fffffffffffffffull},
       "1",
       "7fffffffffffffff00000000000000008000000000000001"},
      {{0x8000000000000001ull, 0x2ull, 0x0ull, 0x8000000000000000ull},
       {0xffffffffffffffffull, 0x2ull, 0x8000000000000001ull},
       "fffffffffffffffd",
       "8000000000000000000000000000000c7ffffffffffffffe"},
  };
  for (const Vector& vec : vectors) {
    const BigUint u = BigUint::from_limbs(std::vector<std::uint64_t>(vec.u));
    const BigUint v = BigUint::from_limbs(std::vector<std::uint64_t>(vec.v));
    const auto [q, r] = BigUint::divmod(u, v);
    EXPECT_EQ(q, BigUint::from_hex(vec.q_hex));
    EXPECT_EQ(r, BigUint::from_hex(vec.r_hex));
    EXPECT_EQ(q * v + r, u);  // reconstruction closes the loop
    EXPECT_LT(r, v);
  }
}

TEST(BigUint, DivmodKaratsubaThresholdBoundary) {
  // Quotient reconstruction with operands straddling the Karatsuba threshold
  // (24 limbs): q*b+r uses the multiply path whose implementation switches
  // right at these widths, so a mismatch in either divmod or Karatsuba
  // stitching shows up as a failed reconstruction.
  Xoshiro256 rng{4242};
  for (const std::size_t limbs : {23u, 24u, 25u}) {
    for (int i = 0; i < 10; ++i) {
      const BigUint a = rng.next_bits(limbs * 64);
      const BigUint b = rng.next_bits(limbs * 32 + 5);
      const auto [q, r] = BigUint::divmod(a, b);
      EXPECT_EQ(q * b + r, a) << limbs;
      EXPECT_LT(r, b) << limbs;
    }
  }
}

TEST(BigUint, DivisionByZeroThrows) {
  EXPECT_THROW(BigUint{1} / BigUint{}, std::domain_error);
  EXPECT_THROW(BigUint{1} % BigUint{}, std::domain_error);
}

TEST(BigUint, ShiftsRoundTrip) {
  const BigUint v = BigUint::from_hex("123456789abcdef0fedcba9876543210");
  for (const std::size_t n : {1u, 13u, 64u, 65u, 127u, 200u}) {
    EXPECT_EQ((v << n) >> n, v) << "shift " << n;
  }
  EXPECT_TRUE((BigUint{1} >> 1).is_zero());
}

TEST(BigUint, ComparisonOrdering) {
  EXPECT_LT(BigUint{1}, BigUint{2});
  EXPECT_LT(BigUint{0xFFFFFFFFFFFFFFFFull}, BigUint::from_hex("10000000000000000"));
  EXPECT_EQ(BigUint::from_hex("ff"), BigUint{255});
}

TEST(BigUint, IsqrtExact) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    const BigUint sq = BigUint{i} * BigUint{i};
    EXPECT_EQ(sq.isqrt(), BigUint{i});
    if (i > 0) {
      EXPECT_EQ((sq + BigUint{1}).isqrt(), BigUint{i});
      EXPECT_EQ((sq - BigUint{1}).isqrt(), BigUint{i - 1});
    }
  }
}

TEST(BigUint, GcdMatchesEuclid) {
  EXPECT_EQ(BigUint::gcd(BigUint{48}, BigUint{36}), BigUint{12});
  EXPECT_EQ(BigUint::gcd(BigUint{17}, BigUint{5}), BigUint{1});
  EXPECT_EQ(BigUint::gcd(BigUint{}, BigUint{7}), BigUint{7});
}


TEST(BigUint, KaratsubaCrossCheckedByDivision) {
  // operator* switches to Karatsuba above ~24 limbs; division is an
  // independent implementation, so (a*b)/b == a is a strong cross-check.
  Xoshiro256 rng{777};
  for (const std::size_t bits : {1400u, 1536u, 1537u, 3000u, 6000u}) {
    const BigUint a = rng.next_bits(bits);
    const BigUint b = rng.next_bits(bits / 2 + 3);
    const BigUint product = a * b;
    const auto [q, r] = BigUint::divmod(product, b);
    EXPECT_EQ(q, a) << bits;
    EXPECT_TRUE(r.is_zero()) << bits;
  }
}

TEST(BigUint, KaratsubaThresholdBoundary) {
  // Widths straddling the Karatsuba threshold (24 limbs = 1536 bits): the
  // distributive law must hold across the path switch.
  Xoshiro256 rng{778};
  for (const std::size_t limbs : {22u, 23u, 24u, 25u, 48u, 49u}) {
    const BigUint a = rng.next_bits(limbs * 64);
    const BigUint b = rng.next_bits(limbs * 64);
    const BigUint c = rng.next_bits(limbs * 64);
    EXPECT_EQ(a * (b + c), a * b + a * c) << limbs;
    EXPECT_EQ((a + b) * c, a * c + b * c) << limbs;
  }
}

TEST(BigUint, KaratsubaAsymmetricOperands) {
  Xoshiro256 rng{779};
  const BigUint big = rng.next_bits(4000);
  const BigUint small = rng.next_bits(70);
  const auto [q, r] = BigUint::divmod(big * small, small);
  EXPECT_EQ(q, big);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(big * BigUint{1}, big);
}

// --- Property sweeps across widths --------------------------------------

class ArithmeticProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArithmeticProperty, DivModReconstructs) {
  const std::size_t bits = GetParam();
  Xoshiro256 rng{bits * 1000 + 1};
  for (int i = 0; i < 50; ++i) {
    const BigUint a = rng.next_bits(bits);
    const BigUint b = rng.next_bits(1 + static_cast<std::size_t>(rng.next_u64() % bits));
    const auto [q, r] = BigUint::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST_P(ArithmeticProperty, AddSubInverse) {
  const std::size_t bits = GetParam();
  Xoshiro256 rng{bits * 1000 + 2};
  for (int i = 0; i < 50; ++i) {
    const BigUint a = rng.next_bits(bits);
    const BigUint b = rng.next_bits(bits);
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(ArithmeticProperty, MulDistributesOverAdd) {
  const std::size_t bits = GetParam();
  Xoshiro256 rng{bits * 1000 + 3};
  for (int i = 0; i < 20; ++i) {
    const BigUint a = rng.next_bits(bits);
    const BigUint b = rng.next_bits(bits);
    const BigUint c = rng.next_bits(bits);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST_P(ArithmeticProperty, SquaredMatchesMul) {
  const std::size_t bits = GetParam();
  Xoshiro256 rng{bits * 1000 + 4};
  for (int i = 0; i < 20; ++i) {
    const BigUint a = rng.next_bits(bits);
    EXPECT_EQ(a.squared(), a * a);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ArithmeticProperty,
                         ::testing::Values(8, 63, 64, 65, 128, 192, 256, 512, 1024));

// --- Modular arithmetic ---------------------------------------------------

TEST(Modular, PowModKnownValues) {
  EXPECT_EQ(pow_mod(BigUint{2}, BigUint{10}, BigUint{1000}), BigUint{24});
  EXPECT_EQ(pow_mod(BigUint{3}, BigUint{0}, BigUint{7}), BigUint{1});
  EXPECT_EQ(pow_mod(BigUint{5}, BigUint{3}, BigUint{1}), BigUint{});
}

TEST(Modular, PowModFermat) {
  // a^(p-1) ≡ 1 (mod p) for prime p.
  const BigUint p = BigUint::from_dec("1000000007");
  Xoshiro256 rng{9};
  for (int i = 0; i < 20; ++i) {
    const BigUint a = rng.next_nonzero_below(p);
    EXPECT_EQ(pow_mod(a, p - BigUint{1}, p), BigUint{1});
  }
}

TEST(Modular, InvModRoundTrip) {
  const BigUint m = BigUint::from_dec("1000000007");
  Xoshiro256 rng{10};
  for (int i = 0; i < 50; ++i) {
    const BigUint a = rng.next_nonzero_below(m);
    const auto inv = inv_mod(a, m);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(mul_mod(a, *inv, m), BigUint{1});
  }
}

TEST(Modular, InvModCompositeModulus) {
  // gcd(6, 9) = 3: no inverse.
  EXPECT_FALSE(inv_mod(BigUint{6}, BigUint{9}).has_value());
  // gcd(2, 9) = 1: inverse exists.
  const auto inv = inv_mod(BigUint{2}, BigUint{9});
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, BigUint{5});
}

TEST(Modular, InvModLargeModulus) {
  Xoshiro256 rng{11};
  const BigUint m = random_prime(256, rng);
  for (int i = 0; i < 10; ++i) {
    const BigUint a = rng.next_nonzero_below(m);
    const auto inv = inv_mod(a, m);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(mul_mod(a, *inv, m), BigUint{1});
  }
}

TEST(Modular, AddSubMod) {
  const BigUint m{17};
  EXPECT_EQ(add_mod(BigUint{9}, BigUint{9}, m), BigUint{1});
  EXPECT_EQ(sub_mod(BigUint{3}, BigUint{5}, m), BigUint{15});
}

// --- Primality --------------------------------------------------------------

TEST(Primality, SmallPrimesClassified) {
  Xoshiro256 rng{12};
  const std::uint64_t primes[] = {2, 3, 5, 7, 11, 101, 257, 65537, 1000000007};
  for (const auto p : primes) EXPECT_TRUE(is_probable_prime(BigUint{p}, rng)) << p;
  const std::uint64_t composites[] = {0, 1, 4, 9, 100, 561 /*Carmichael*/, 65536,
                                      1000000007ull * 3};
  for (const auto c : composites) EXPECT_FALSE(is_probable_prime(BigUint{c}, rng)) << c;
}

TEST(Primality, LargeCarmichaelRejected) {
  Xoshiro256 rng{13};
  // 1729 and 2465 are Carmichael numbers (strong pseudoprime traps).
  EXPECT_FALSE(is_probable_prime(BigUint{1729}, rng));
  EXPECT_FALSE(is_probable_prime(BigUint{2465}, rng));
}

TEST(Primality, RandomPrimeHasRequestedSize) {
  Xoshiro256 rng{14};
  for (const std::size_t bits : {32u, 64u, 128u, 256u}) {
    const BigUint p = random_prime(bits, rng);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Primality, ConditionalPrimeSatisfiesPredicate) {
  Xoshiro256 rng{15};
  const BigUint p = random_prime_where(
      64, rng, [](const BigUint& candidate) { return (candidate.limb(0) & 3u) == 3u; });
  EXPECT_EQ(p.limb(0) & 3u, 3u);
  EXPECT_TRUE(is_probable_prime(p, rng));
}

// --- RNG ---------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a{42};
  Xoshiro256 b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a{1};
  Xoshiro256 b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowIsInRangeAndCoversSmallDomains) {
  Xoshiro256 rng{16};
  std::array<int, 7> histogram{};
  for (int i = 0; i < 7000; ++i) {
    const auto v = rng.next_below(BigUint{7}).to_u64();
    ASSERT_LT(v, 7u);
    ++histogram[v];
  }
  for (const auto count : histogram) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(Rng, NextBitsSetsTopBit) {
  Xoshiro256 rng{17};
  for (const std::size_t bits : {1u, 7u, 64u, 65u, 160u, 512u}) {
    const BigUint v = rng.next_bits(bits);
    EXPECT_EQ(v.bit_length(), bits);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng{18};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace seccloud::num
