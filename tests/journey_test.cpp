// Request-lifecycle journey tracing: the 88-byte record codec (round-trip +
// every-byte truncation sweep, the PR-4 crash-sweep pattern), magic
// separation from the telemetry stream, the bounded recorder ring, the
// deterministic sampling coin, hand-computed critical-path attribution, and
// the service integration — full-sampling stage-sum identity, the
// always-sample policy over rejected/filtered/bisected/slowest requests,
// the journey↔ledger join, and the EpochReport JSON round-trip through
// obs::json_parse.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bigint/rng.h"
#include "hash/sha256.h"
#include "ibc/keys.h"
#include "obs/export.h"
#include "obs/journey.h"
#include "obs/telemetry.h"
#include "pairing/group.h"
#include "seccloud/service/ledger.h"
#include "seccloud/service/service.h"
#include "sim/fleet.h"

namespace seccloud::obs {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;

JourneyRecord sample_record() {
  JourneyRecord r;
  r.request_id = 0x1122334455667788;
  r.user = 0xdeadbeefcafe;
  r.epoch = 17;
  r.batch = 3;
  r.request_index = 41;
  r.blocks = 4;
  r.retry_after_epochs = 0;
  r.verdict = JourneyVerdict::kInvalidSignature;
  r.sampled = kJourneySampledRejected | kJourneySampledBisected;
  r.bisection_depth = 5;
  r.amortized_pairings_milli = 250;
  r.stage_us = {60, 940, 3, 2, 5, 80, 8, 2};
  r.end_to_end_us = 1100;
  return r;
}

// --- codec ------------------------------------------------------------------

TEST(JourneyCodec, RecordRoundTrips) {
  const JourneyRecord record = sample_record();
  const auto payload = encode_journey_record(record);
  EXPECT_EQ(payload.size(), kJourneyPayloadBytes);
  const auto decoded = decode_journey_record(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, record);
  EXPECT_EQ(decoded->stage_sum_us(), 1100u);
}

TEST(JourneyCodec, RejectedAdmissionRecordRoundTrips) {
  JourneyRecord record;
  record.request_id = 9;
  record.user = 2;
  record.epoch = 0;
  record.retry_after_epochs = 1;
  record.verdict = JourneyVerdict::kRejectedAdmission;
  record.stage_us[0] = 45;
  record.end_to_end_us = 45;
  EXPECT_EQ(record.batch, kJourneyNoBatch);
  EXPECT_EQ(record.request_index, kJourneyNoRequest);
  const auto decoded = decode_journey_record(encode_journey_record(record));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, record);
}

TEST(JourneyCodec, RejectsWrongSizeAndBadVerdict) {
  auto payload = encode_journey_record(sample_record());
  EXPECT_FALSE(decode_journey_record({payload.data(), payload.size() - 1}));
  payload[40] = 0;  // verdict byte below the enum range
  EXPECT_FALSE(decode_journey_record(payload).has_value());
  payload[40] = 7;  // above the range
  EXPECT_FALSE(decode_journey_record(payload).has_value());
}

// --- framed stream ----------------------------------------------------------

TEST(JourneyStream, EveryTruncationPointYieldsAnIntactPrefix) {
  JourneyRecorder recorder{{.ring_capacity = 8, .stream_id = 5}};
  for (std::uint64_t i = 0; i < 4; ++i) {
    JourneyRecord record = sample_record();
    record.epoch = i;
    recorder.record(record);
  }
  EXPECT_EQ(recorder.records(), 4u);
  const auto bytes = recorder.stream();
  const std::size_t record_size = bytes.size() / 4;
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const JourneyReplay replay = replay_journeys(bytes.subspan(0, cut));
    EXPECT_EQ(replay.records.size(), cut / record_size) << "cut=" << cut;
    EXPECT_EQ(replay.torn_tail, cut % record_size != 0) << "cut=" << cut;
    EXPECT_EQ(replay.malformed_payloads, 0u);
    for (std::size_t i = 0; i < replay.records.size(); ++i) {
      EXPECT_EQ(replay.records[i].epoch, i) << "append order preserved";
    }
  }
}

TEST(JourneyStream, FlippedByteTruncatesAtTheCorruptRecord) {
  JourneyRecorder recorder;
  for (int i = 0; i < 3; ++i) recorder.record(sample_record());
  std::vector<std::uint8_t> bytes{recorder.stream().begin(), recorder.stream().end()};
  bytes[bytes.size() / 2] ^= 0x01;  // inside record #1
  const JourneyReplay replay = replay_journeys(bytes);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.records.size(), 1u) << "the intact prefix stands";
}

TEST(JourneyStream, MalformedPayloadIsCountedNotDropped) {
  // Rebuild a frame whose payload carries an invalid verdict byte with a
  // valid checksum: the frame replays, the payload loss stays visible.
  JourneyRecorder recorder;
  recorder.record(sample_record());
  recorder.record(sample_record());
  std::vector<std::uint8_t> bytes{recorder.stream().begin(), recorder.stream().end()};
  const std::size_t frame_size = bytes.size() / 2;
  constexpr std::size_t kHeaderBytes = 16;
  bytes[kHeaderBytes + 40] = 0;  // first record's verdict byte
  const auto digest = hash::Sha256::digest(
      std::span<const std::uint8_t>{bytes.data(), frame_size - 8});
  std::copy(digest.begin(), digest.begin() + 8, bytes.begin() +
            static_cast<std::ptrdiff_t>(frame_size - 8));
  const JourneyReplay replay = replay_journeys(bytes);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.malformed_payloads, 1u);
  EXPECT_EQ(replay.records.size(), 1u);
}

TEST(JourneyStream, MagicSeparatesJourneysFromTelemetry) {
  // A journey stream must never replay as telemetry and vice versa: the
  // 'SY' magic fails the 'ST' check at byte 1 (and both fail the session
  // journal's 'SJ'), so cross-feeding streams yields zero records.
  JourneyRecorder recorder;
  recorder.record(sample_record());
  const TelemetryReplay as_telemetry = replay_telemetry(recorder.stream());
  EXPECT_TRUE(as_telemetry.torn_tail);
  EXPECT_TRUE(as_telemetry.records.empty());

  TelemetryRecord alien;
  alien.type = TelemetryRecordType::kEpochSnapshot;
  alien.payload = {'{', '}'};
  const auto telemetry_bytes = encode_telemetry_record(alien);
  const JourneyReplay as_journeys = replay_journeys(telemetry_bytes);
  EXPECT_TRUE(as_journeys.torn_tail);
  EXPECT_TRUE(as_journeys.records.empty());
}

// --- the recorder -----------------------------------------------------------

TEST(JourneyRecorderTest, RingIsBoundedTheStreamIsNot) {
  JourneyRecorder recorder{{.ring_capacity = 2}};
  for (std::uint64_t i = 0; i < 5; ++i) {
    JourneyRecord record = sample_record();
    record.request_id = i;
    recorder.record(record);
  }
  EXPECT_EQ(recorder.records(), 5u);
  ASSERT_EQ(recorder.ring().size(), 2u) << "ring evicts past capacity";
  EXPECT_EQ(recorder.ring().front().request_id, 3u);
  EXPECT_EQ(recorder.ring().back().request_id, 4u);
  const JourneyReplay replay = replay_journeys(recorder.stream());
  EXPECT_EQ(replay.records.size(), 5u) << "the stream keeps everything";
  EXPECT_GT(recorder.capture_ms(), 0.0);
}

TEST(JourneyRecorderTest, ProbabilisticCoinIsSeededAndDeterministic) {
  const JourneyRecorder a{{.sample_seed = 1, .sample_every = 16}};
  const JourneyRecorder b{{.sample_seed = 1, .sample_every = 16}};
  const JourneyRecorder c{{.sample_seed = 2, .sample_every = 16}};
  const JourneyRecorder keep_all{{.sample_every = 1}};
  std::size_t kept = 0;
  bool seeds_differ = false;
  for (std::uint64_t id = 0; id < 10'000; ++id) {
    EXPECT_EQ(a.sample_probabilistic(3, id), b.sample_probabilistic(3, id));
    EXPECT_TRUE(keep_all.sample_probabilistic(3, id));
    if (a.sample_probabilistic(3, id) != c.sample_probabilistic(3, id)) {
      seeds_differ = true;
    }
    if (a.sample_probabilistic(3, id)) ++kept;
  }
  EXPECT_TRUE(seeds_differ) << "the seed must matter";
  // 1-in-16 coin over 10k ids: a loose band around 625 (SplitMix64 mixes
  // well; this is a sanity bound, not a statistical test).
  EXPECT_GT(kept, 10'000 / 32);
  EXPECT_LT(kept, 10'000 / 8);
}

// --- critical-path attribution ----------------------------------------------

TEST(JourneyAttributionTest, HandComputedPercentilesAndShares) {
  // Three journeys: 45us reject, 1004us stale filter, 1100us bisected
  // verify. Nearest-rank p99 over {45, 1004, 1100} is 1100, defined by
  // request 101, whose admit stage owns 940/1100 of the critical path.
  std::vector<JourneyRecord> records(3);
  records[0].request_id = 101;
  records[0].stage_us = {60, 940, 3, 2, 5, 80, 8, 2};
  records[0].end_to_end_us = 1100;
  records[1].request_id = 102;
  records[1].stage_us = {55, 946, 3, 0, 0, 0, 0, 0};
  records[1].end_to_end_us = 1004;
  records[2].request_id = 103;
  records[2].stage_us = {45, 0, 0, 0, 0, 0, 0, 0};
  records[2].end_to_end_us = 45;

  const JourneyAttribution attribution = attribute_journeys(records);
  EXPECT_EQ(attribution.journeys, 3u);
  EXPECT_EQ(attribution.p99_end_to_end_us, 1100u);
  EXPECT_EQ(attribution.p99_request_id, 101u);
  const auto admit = static_cast<std::size_t>(JourneyStage::kAdmit);
  EXPECT_EQ(attribution.stages[admit].p50_us, 940u);
  EXPECT_EQ(attribution.stages[admit].p95_us, 946u);
  EXPECT_EQ(attribution.stages[admit].p99_us, 946u);
  EXPECT_EQ(attribution.stages[admit].total_us, 940u + 946u);
  const auto enqueue = static_cast<std::size_t>(JourneyStage::kEnqueue);
  EXPECT_EQ(attribution.stages[enqueue].p50_us, 55u);
  EXPECT_DOUBLE_EQ(attribution.p99_share[admit], 940.0 / 1100.0);
  double share_sum = 0.0;
  for (const double share : attribution.p99_share) share_sum += share;
  EXPECT_DOUBLE_EQ(share_sum, 1.0) << "shares cover the whole critical path";
}

TEST(JourneyAttributionTest, EmptySetIsAllZero) {
  const JourneyAttribution attribution = attribute_journeys({});
  EXPECT_EQ(attribution, JourneyAttribution{});
}

TEST(JourneyNames, AreStable) {
  EXPECT_STREQ(to_string(JourneyStage::kEnqueue), "enqueue");
  EXPECT_STREQ(to_string(JourneyStage::kAdmit), "admit");
  EXPECT_STREQ(to_string(JourneyStage::kFilter), "filter");
  EXPECT_STREQ(to_string(JourneyStage::kFlatten), "flatten");
  EXPECT_STREQ(to_string(JourneyStage::kAttest), "attest");
  EXPECT_STREQ(to_string(JourneyStage::kVerify), "verify");
  EXPECT_STREQ(to_string(JourneyStage::kBisect), "bisect");
  EXPECT_STREQ(to_string(JourneyStage::kVerdict), "verdict");
  EXPECT_STREQ(to_string(JourneyVerdict::kVerified), "verified");
  EXPECT_STREQ(to_string(JourneyVerdict::kRejectedAdmission), "rejected-admission");
}

// --- service integration ----------------------------------------------------

struct JourneyServiceFixture : ::testing::Test {
  const pairing::PairingGroup& g = tiny_group();
  Xoshiro256 rng{7171};
  ibc::Sio sio{g, rng};
  ibc::IdentityKey da = sio.extract("agency@journey");
  ibc::IdentityKey cs = sio.extract("cs@journey");

  service::AuditService make_service(std::size_t queue_capacity = 64,
                                     std::size_t batch_capacity = 8) {
    service::ServiceConfig config;
    config.registry.shards = 4;
    config.epoch.queue_capacity = queue_capacity;
    config.epoch.batch_capacity = batch_capacity;
    config.threads = 1;
    return service::AuditService{g, da, cs, config};
  }
};

TEST_F(JourneyServiceFixture, FullSamplingKeepsEveryRequestWithStageSumIdentity) {
  service::AuditService svc = make_service();
  JourneyRecorder recorder{{.sample_every = 1}};  // full-fidelity mode
  svc.attach_journeys(&recorder);
  sim::FleetWorkload fleet{
      sio, {.users = 16, .active_users = 5, .blocks_per_request = 3, .seed = 61}};
  fleet.populate(svc);

  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  const service::EpochReport first = svc.run_epoch();
  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  const service::EpochReport second = svc.run_epoch();
  ASSERT_EQ(first.verified_requests, 5u);
  ASSERT_EQ(second.verified_requests, 5u);

  const JourneyReplay replay = replay_journeys(recorder.stream());
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.malformed_payloads, 0u);
  ASSERT_EQ(replay.records.size(), 10u) << "one journey per request per epoch";
  std::uint64_t last_id = 0;
  for (const JourneyRecord& j : replay.records) {
    EXPECT_GT(j.request_id, last_id) << "global admission ordinal, never reused";
    last_id = j.request_id;
    EXPECT_EQ(j.verdict, JourneyVerdict::kVerified);
    EXPECT_NE(j.batch, kJourneyNoBatch);
    EXPECT_EQ(j.blocks, 3u);
    EXPECT_EQ(j.bisection_depth, 0u);
    EXPECT_EQ(j.retry_after_epochs, 0u);
    EXPECT_GT(j.amortized_pairings_milli, 0u) << "its share of the 2-pairing batch";
    // The acceptance identity: the stage telescoping reproduces the
    // measured end-to-end within one clock quantum per stage boundary.
    const std::uint64_t sum = j.stage_sum_us();
    const std::uint64_t e2e = j.end_to_end_us;
    EXPECT_LE(sum > e2e ? sum - e2e : e2e - sum, 8u)
        << "request " << j.request_id << ": stage sum " << sum
        << "us vs end-to-end " << e2e << "us";
    EXPECT_TRUE(j.sampled & kJourneySampledProbabilistic) << "keep-all coin";
  }
  // Exactly one slowest-of-epoch journey per epoch.
  for (const service::EpochReport* report : {&first, &second}) {
    std::size_t slowest = 0;
    for (const JourneyRecord& j : replay.records) {
      if (j.epoch == report->epoch && (j.sampled & kJourneySampledSlowest)) ++slowest;
    }
    EXPECT_EQ(slowest, 1u) << "epoch " << report->epoch;
  }

  // With every journey sampled, recomputing the attribution from the
  // replayed bytes alone must reproduce the report's block exactly.
  std::vector<JourneyRecord> second_epoch;
  for (JourneyRecord j : replay.records) {
    if (j.epoch != second.epoch) continue;
    j.sampled = 0;  // the report attributed pre-sampling records
    second_epoch.push_back(j);
  }
  EXPECT_EQ(second.attribution, attribute_journeys(second_epoch));
  EXPECT_EQ(second.attribution.journeys, 5u);
  double share_sum = 0.0;
  for (const double share : second.attribution.p99_share) share_sum += share;
  EXPECT_DOUBLE_EQ(share_sum, 1.0);
}

TEST_F(JourneyServiceFixture, AlwaysSamplePolicyKeepsTheForensicTail) {
  // Coin effectively off (1-in-2^32): what survives is exactly the
  // always-sample set — backpressure rejects, pre-batch filters, bisected
  // requests, and each epoch's slowest journey.
  service::AuditService svc = make_service(/*queue_capacity=*/4);
  JourneyRecorder recorder{{.sample_every = 0xFFFFFFFF}};
  svc.attach_journeys(&recorder);
  sim::FleetWorkload fleet{sio,
                           {.users = 8,
                            .active_users = 4,
                            .blocks_per_request = 2,
                            .seed = 71,
                            .include_unkeyed_probe = true}};
  fleet.populate(svc);

  // Epoch 0: honest wave fills the queue exactly; a duplicate wave must be
  // rejected with a retry-after hint, producing rejected-admission journeys.
  // The duplicates resubmit the already-issued version (kStaleReplay) so the
  // fleet's version bookkeeping stays aligned with what actually got audited.
  for (auto& r : fleet.make_requests(svc)) ASSERT_TRUE(svc.submit(std::move(r)).accepted);
  std::size_t rejected = 0;
  for (auto& r : fleet.make_requests(
           svc, [](std::size_t) { return sim::FleetBehavior::kStaleReplay; })) {
    const service::Admission a = svc.submit(std::move(r));
    if (!a.accepted) {
      ++rejected;
      EXPECT_GT(a.retry_after_epochs, 0u);
    }
  }
  ASSERT_EQ(rejected, 4u);
  const service::EpochReport first = svc.run_epoch();
  ASSERT_EQ(first.requests, 4u);

  // Epoch 1: user 0 flips a payload byte (bisection isolates it), user 1
  // replays its audited version (stale filter), user 2 submits under the
  // unkeyed probe (unkeyed filter), user 3 stays honest.
  for (auto& r : fleet.make_requests(svc, [](std::size_t i) {
         switch (i) {
           case 0: return sim::FleetBehavior::kBadSignature;
           case 1: return sim::FleetBehavior::kStaleReplay;
           case 2: return sim::FleetBehavior::kUnkeyedProbe;
           default: return sim::FleetBehavior::kHonest;
         }
       })) {
    svc.submit(std::move(r));
  }
  const service::EpochReport second = svc.run_epoch();
  ASSERT_EQ(second.stale_rejected, 1u);
  ASSERT_EQ(second.unkeyed_rejected, 1u);
  ASSERT_FALSE(second.byzantine_users.empty());

  const JourneyReplay replay = replay_journeys(recorder.stream());
  ASSERT_FALSE(replay.torn_tail);
  std::map<std::string, std::size_t> verdicts;
  for (const JourneyRecord& j : replay.records) {
    verdicts[to_string(j.verdict)] += 1;
    EXPECT_NE(j.sampled, 0u);
    if (j.verdict != JourneyVerdict::kVerified) {
      EXPECT_TRUE(j.sampled & kJourneySampledRejected)
          << "always-sample covers every non-verified journey";
    }
    if (j.verdict == JourneyVerdict::kRejectedAdmission) {
      EXPECT_EQ(j.request_index, kJourneyNoRequest) << "never drained";
      EXPECT_EQ(j.batch, kJourneyNoBatch);
      EXPECT_GT(j.retry_after_epochs, 0u);
      EXPECT_EQ(j.end_to_end_us, j.stage_sum_us()) << "enqueue-only journey";
    }
    if (j.verdict == JourneyVerdict::kInvalidSignature) {
      EXPECT_TRUE(j.sampled & kJourneySampledBisected);
      EXPECT_GT(j.bisection_depth, 0u) << "descent isolated its entry";
    }
  }
  EXPECT_EQ(verdicts["rejected-admission"], 4u);
  EXPECT_EQ(verdicts["stale-replay"], 1u);
  EXPECT_EQ(verdicts["unkeyed"], 1u);
  EXPECT_EQ(verdicts["invalid-signature"], 1u);
  // Plus the slowest-of-epoch journeys: epoch 0's slowest is one of its four
  // verified requests; epoch 1's may coincide with an always-sampled record.
  EXPECT_GE(replay.records.size(), 8u);
  EXPECT_LE(replay.records.size(), 9u);
  // Attribution still covered every journey, sampled or not.
  EXPECT_EQ(second.attribution.journeys, second.requests);
}

TEST_F(JourneyServiceFixture, LedgerJoinCarriesSampledJourneyIds) {
  service::AuditService svc = make_service();
  JourneyRecorder recorder{{.sample_every = 1}};
  service::VerdictLedger ledger;
  svc.attach_journeys(&recorder);
  svc.attach_ledger(&ledger);
  sim::FleetWorkload fleet{
      sio, {.users = 8, .active_users = 4, .blocks_per_request = 2, .seed = 81}};
  fleet.populate(svc);
  for (auto& r : fleet.make_requests(svc, [](std::size_t i) {
         return i == 0 ? sim::FleetBehavior::kBadSignature
                       : sim::FleetBehavior::kHonest;
       })) {
    svc.submit(std::move(r));
  }
  const service::EpochReport report = svc.run_epoch();
  ASSERT_EQ(report.requests, 4u);

  const JourneyReplay journeys = replay_journeys(recorder.stream());
  std::map<std::uint64_t, const JourneyRecord*> by_id;
  for (const JourneyRecord& j : journeys.records) by_id[j.request_id] = &j;

  const service::LedgerReplay entries = service::replay_ledger(ledger.bytes());
  ASSERT_EQ(entries.entries.size(), 8u) << "4 requests x 2 blocks";
  for (const service::LedgerEntry& entry : entries.entries) {
    ASSERT_NE(entry.journey_id, 0u)
        << "full sampling: every ledger record links to a journey";
    const auto it = by_id.find(entry.journey_id);
    ASSERT_NE(it, by_id.end()) << "the linked journey is in the stream";
    const JourneyRecord& j = *it->second;
    EXPECT_EQ(j.user, entry.user);
    EXPECT_EQ(j.epoch, entry.epoch);
    EXPECT_EQ(j.request_index, entry.request_index);
    if (entry.verdict == service::LedgerVerdict::kInvalidSignature) {
      EXPECT_EQ(j.verdict, JourneyVerdict::kInvalidSignature);
      EXPECT_GE(j.bisection_depth, entry.isolation_depth)
          << "the journey's depth is the max over the request's own entries";
    }
  }
}

TEST_F(JourneyServiceFixture, EpochReportJsonRoundTripsThroughJsonParse) {
  service::AuditService svc = make_service();
  JourneyRecorder recorder{{.sample_every = 1}};
  svc.attach_journeys(&recorder);
  sim::FleetWorkload fleet{
      sio, {.users = 8, .active_users = 3, .blocks_per_request = 2, .seed = 91}};
  fleet.populate(svc);
  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  const service::EpochReport report = svc.run_epoch();

  const auto parsed = json_parse(report.to_json());
  ASSERT_TRUE(parsed.has_value()) << report.to_json();
  ASSERT_TRUE(parsed->is_object());
  const auto number = [&](const char* key) {
    const JsonValue* v = parsed->find(key);
    EXPECT_NE(v, nullptr) << key;
    return v != nullptr && v->is_number() ? v->number : -1.0;
  };
  EXPECT_EQ(number("epoch"), static_cast<double>(report.epoch));
  EXPECT_EQ(number("requests"), static_cast<double>(report.requests));
  EXPECT_EQ(number("stale_rejected"), static_cast<double>(report.stale_rejected));
  EXPECT_EQ(number("unkeyed_rejected"), static_cast<double>(report.unkeyed_rejected));
  EXPECT_EQ(number("entries"), static_cast<double>(report.entries));
  EXPECT_EQ(number("batches"), static_cast<double>(report.batches));
  EXPECT_EQ(number("verified_requests"), static_cast<double>(report.verified_requests));
  EXPECT_EQ(number("failed_requests"), static_cast<double>(report.failed_requests));
  EXPECT_EQ(number("invalid_entries"), static_cast<double>(report.invalid_entries.size()));
  EXPECT_EQ(number("assembly_pairings"), static_cast<double>(report.assembly_ops.pairings));
  EXPECT_EQ(number("verify_pairings"), static_cast<double>(report.verify_ops.pairings));
  EXPECT_EQ(number("bisection_oracle_calls"),
            static_cast<double>(report.bisection.oracle_calls));
  EXPECT_EQ(number("bisection_max_depth"),
            static_cast<double>(report.bisection.max_depth));
  EXPECT_EQ(number("retry_after_epochs"), static_cast<double>(report.retry_after_epochs));
  EXPECT_EQ(number("epoch_ms"), report.epoch_ms);
  EXPECT_EQ(number("telemetry_ms"), report.telemetry_ms);
  const JsonValue* byzantine = parsed->find("byzantine_users");
  ASSERT_NE(byzantine, nullptr);
  EXPECT_TRUE(byzantine->is_array());
  EXPECT_EQ(byzantine->array.size(), report.byzantine_users.size());

  // The attribution block, field-complete: per-stage percentiles + the p99
  // journey's shares, exactly as the report computed them.
  const JsonValue* attribution = parsed->find("p99_attribution");
  ASSERT_NE(attribution, nullptr);
  ASSERT_TRUE(attribution->is_object());
  const JsonValue* journeys = attribution->find("journeys");
  ASSERT_NE(journeys, nullptr);
  EXPECT_EQ(journeys->number, static_cast<double>(report.attribution.journeys));
  const JsonValue* p99_e2e = attribution->find("p99_end_to_end_us");
  ASSERT_NE(p99_e2e, nullptr);
  EXPECT_EQ(p99_e2e->number, static_cast<double>(report.attribution.p99_end_to_end_us));
  const JsonValue* p99_id = attribution->find("p99_request_id");
  ASSERT_NE(p99_id, nullptr);
  EXPECT_EQ(p99_id->number, static_cast<double>(report.attribution.p99_request_id));
  const JsonValue* stages = attribution->find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_TRUE(stages->is_array());
  ASSERT_EQ(stages->array.size(), kJourneyStageCount);
  for (std::size_t i = 0; i < kJourneyStageCount; ++i) {
    const JsonValue& stage = stages->array[i];
    ASSERT_TRUE(stage.is_object());
    const JsonValue* name = stage.find("stage");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->string, to_string(static_cast<JourneyStage>(i)));
    const StageAttribution& expected = report.attribution.stages[i];
    EXPECT_EQ(stage.find("p50_us")->number, static_cast<double>(expected.p50_us));
    EXPECT_EQ(stage.find("p95_us")->number, static_cast<double>(expected.p95_us));
    EXPECT_EQ(stage.find("p99_us")->number, static_cast<double>(expected.p99_us));
    EXPECT_EQ(stage.find("total_us")->number, static_cast<double>(expected.total_us));
    EXPECT_EQ(stage.find("p99_share")->number, report.attribution.p99_share[i]);
  }
}

}  // namespace
}  // namespace seccloud::obs
