// Elliptic-curve group tests: group laws, scalar-multiplication properties,
// serialization, NIST P-256 known-answer vectors.
#include <gtest/gtest.h>

#include "ec/curve.h"
#include "ec/p256.h"
#include "pairing/group.h"

namespace seccloud::ec {
namespace {

using num::BigUint;
using num::Xoshiro256;

class CurveTest : public ::testing::Test {
 protected:
  // Use the tiny pairing curve (y^2 = x^3 + x) as a generic test subject.
  CurveTest() : g(pairing::tiny_group()), curve(g.curve()), rng(21) {}
  const pairing::PairingGroup& g;
  const Curve& curve;
  Xoshiro256 rng;
};

TEST_F(CurveTest, InfinityIsIdentity) {
  const Point p = g.generator();
  EXPECT_EQ(curve.add(p, Point::at_infinity()), p);
  EXPECT_EQ(curve.add(Point::at_infinity(), p), p);
  EXPECT_TRUE(curve.add(p, curve.neg(p)).infinity);
}

TEST_F(CurveTest, AdditionCommutesAndAssociates) {
  for (int i = 0; i < 10; ++i) {
    const Point a = curve.random_point(rng);
    const Point b = curve.random_point(rng);
    const Point c = curve.random_point(rng);
    EXPECT_EQ(curve.add(a, b), curve.add(b, a));
    EXPECT_EQ(curve.add(curve.add(a, b), c), curve.add(a, curve.add(b, c)));
  }
}

TEST_F(CurveTest, DoublingMatchesAddition) {
  for (int i = 0; i < 10; ++i) {
    const Point a = curve.random_point(rng);
    EXPECT_EQ(curve.dbl(a), curve.add(a, a));
  }
}

TEST_F(CurveTest, ResultsStayOnCurve) {
  for (int i = 0; i < 10; ++i) {
    const Point a = curve.random_point(rng);
    const Point b = curve.random_point(rng);
    EXPECT_TRUE(curve.is_on_curve(curve.add(a, b)));
    EXPECT_TRUE(curve.is_on_curve(curve.dbl(a)));
    EXPECT_TRUE(curve.is_on_curve(curve.mul(BigUint{12345}, a)));
  }
}

TEST_F(CurveTest, ScalarMulMatchesRepeatedAddition) {
  const Point p = g.generator();
  Point acc = Point::at_infinity();
  for (std::uint64_t k = 0; k <= 16; ++k) {
    EXPECT_EQ(curve.mul(BigUint{k}, p), acc) << "k=" << k;
    acc = curve.add(acc, p);
  }
}

TEST_F(CurveTest, ScalarMulDistributes) {
  const Point p = g.generator();
  for (int i = 0; i < 10; ++i) {
    const BigUint a = g.random_scalar(rng);
    const BigUint b = g.random_scalar(rng);
    // (a+b)P = aP + bP
    EXPECT_EQ(curve.mul(a + b, p), curve.add(curve.mul(a, p), curve.mul(b, p)));
    // a(bP) = (ab mod q)P  for p of order q
    EXPECT_EQ(curve.mul(a, curve.mul(b, p)), curve.mul((a * b) % g.order(), p));
  }
}

TEST_F(CurveTest, MultiMulMatchesSumOfMuls) {
  const Point p = g.generator();
  for (int i = 0; i < 5; ++i) {
    std::vector<BigUint> scalars;
    std::vector<Point> points;
    Point expected = Point::at_infinity();
    for (int j = 0; j < 4; ++j) {
      scalars.push_back(g.random_scalar(rng));
      points.push_back(curve.mul(g.random_scalar(rng), p));
      expected = curve.add(expected, curve.mul(scalars.back(), points.back()));
    }
    EXPECT_EQ(curve.multi_mul(scalars, points), expected);
  }
}

TEST_F(CurveTest, MultiMulSizeMismatchThrows) {
  const std::vector<BigUint> scalars(2, BigUint{1});
  const std::vector<Point> points(3, g.generator());
  EXPECT_THROW(curve.multi_mul(scalars, points), std::invalid_argument);
}

TEST_F(CurveTest, SerializeRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    const Point a = curve.random_point(rng);
    const auto bytes = curve.serialize(a);
    const auto back = curve.deserialize(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
  const auto inf = curve.deserialize(curve.serialize(Point::at_infinity()));
  ASSERT_TRUE(inf.has_value());
  EXPECT_TRUE(inf->infinity);
}

TEST_F(CurveTest, DeserializeRejectsOffCurveAndMalformed) {
  auto bytes = curve.serialize(g.generator());
  bytes[1] ^= 1;  // perturb X
  // Either off-curve (reject) or by luck on-curve; flip Y too to force reject.
  auto bytes2 = curve.serialize(g.generator());
  bytes2.back() ^= 1;
  EXPECT_FALSE(curve.deserialize(bytes2).has_value());
  EXPECT_FALSE(curve.deserialize(std::vector<std::uint8_t>{0x02, 0x01}).has_value());
  EXPECT_FALSE(curve.deserialize(std::vector<std::uint8_t>{}).has_value());
}

TEST_F(CurveTest, LiftXRespectsParity) {
  for (int i = 0; i < 20; ++i) {
    const Point a = curve.random_point(rng);
    const auto even = curve.lift_x(a.x, true);
    const auto odd = curve.lift_x(a.x, false);
    ASSERT_TRUE(even.has_value());
    ASSERT_TRUE(odd.has_value());
    EXPECT_TRUE(even->y.is_even());
    EXPECT_TRUE(odd->y.is_odd());
    EXPECT_TRUE(*even == a || *odd == a);
  }
}


TEST_F(CurveTest, CompressedSerializationRoundTrip) {
  for (int i = 0; i < 20; ++i) {
    const Point a = curve.random_point(rng);
    const auto bytes = curve.serialize_compressed(a);
    EXPECT_EQ(bytes.size(), 1 + (g.params().p.bit_length() + 7) / 8);
    const auto back = curve.deserialize_compressed(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
  const auto inf = curve.deserialize_compressed(curve.serialize_compressed(Point::at_infinity()));
  ASSERT_TRUE(inf.has_value());
  EXPECT_TRUE(inf->infinity);
}

TEST_F(CurveTest, CompressedRejectsMalformed) {
  auto bytes = curve.serialize_compressed(g.generator());
  bytes[0] = 0x05;
  EXPECT_FALSE(curve.deserialize_compressed(bytes).has_value());
  EXPECT_FALSE(curve.deserialize_compressed(std::vector<std::uint8_t>{0x02}).has_value());
}

TEST_F(CurveTest, CompressedIsHalfTheSizeOfUncompressed) {
  const Point a = curve.random_point(rng);
  EXPECT_LT(curve.serialize_compressed(a).size(), curve.serialize(a).size());
}

TEST_F(CurveTest, WnafMatchesBinaryForManyScalars) {
  // mul() switches to wNAF above 8 bits; cross-check against the additive
  // chain identity k.P = (k-1).P + P across the switch boundary.
  const Point p = g.generator();
  Point acc = Point::at_infinity();
  for (std::uint64_t k = 0; k < 600; ++k) {
    ASSERT_EQ(curve.mul(BigUint{k}, p), acc) << "k=" << k;
    acc = curve.add(acc, p);
  }
}

TEST_F(CurveTest, WnafHandlesFullWidthScalars) {
  for (int i = 0; i < 10; ++i) {
    const BigUint a = g.random_scalar(rng);
    const BigUint b = g.random_scalar(rng);
    const Point pt = curve.random_point(rng);
    // Homomorphism check exercises every digit pattern.
    EXPECT_EQ(curve.mul(a + b, pt), curve.add(curve.mul(a, pt), curve.mul(b, pt)));
  }
}

// --- NIST P-256 known-answer tests -----------------------------------------

class P256Test : public ::testing::Test {
 protected:
  P256 p256;
};

TEST_F(P256Test, GeneratorOnCurveWithCorrectOrder) {
  EXPECT_TRUE(p256.curve().is_on_curve(p256.generator()));
  EXPECT_TRUE(p256.curve().mul(p256.order(), p256.generator()).infinity);
}

TEST_F(P256Test, KnownScalarMultiples) {
  // 2G from the standard test vectors.
  const Point two_g = p256.curve().mul(BigUint{2}, p256.generator());
  EXPECT_EQ(two_g.x.to_hex(), "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(two_g.y.to_hex(), "7775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
  // 5G.
  const Point five_g = p256.curve().mul(BigUint{5}, p256.generator());
  EXPECT_EQ(five_g.x.to_hex(), "51590b7a515140d2d784c85608668fdfef8c82fd1f5be52421554a0dc3d033ed");
}

TEST_F(P256Test, LargeKnownScalar) {
  // k = order - 1 gives -G.
  const Point minus_g = p256.curve().mul(p256.order() - BigUint{1}, p256.generator());
  EXPECT_EQ(minus_g.x, p256.generator().x);
  EXPECT_EQ(minus_g, p256.curve().neg(p256.generator()));
}

}  // namespace
}  // namespace seccloud::ec
