// Work-stealing thread pool tests: sizing, completeness of parallel_for,
// task-group waiting, and the serial degenerate case that underpins the
// engine's "threads == 1 means no workers" guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace seccloud::util {
namespace {

TEST(ThreadPool, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;  // 0 => hardware_concurrency, clamped to >= 1
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSizeHonored) {
  ThreadPool pool{3};
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10'000;
  ThreadPool pool{4};
  std::vector<std::atomic<std::uint32_t>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoOp) {
  ThreadPool pool{2};
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolRunsOnCaller) {
  // size 1 => no worker threads; the body must execute inline on the
  // calling thread (this is what makes threads=1 exactly the serial path).
  ThreadPool pool{1};
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.parallel_for(8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 8u);
  for (const auto id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, SubmitAndWaitRunsAllTasks) {
  ThreadPool pool{4};
  ThreadPool::TaskGroup group;
  std::atomic<std::uint64_t> sum{0};
  constexpr std::uint64_t kTasks = 500;
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    pool.submit(group, [&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.wait(group);
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool{2};
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
      count.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64);
  }
}

TEST(ThreadPool, BoundMetricsCountEveryTask) {
  obs::MetricsRegistry registry;
  ThreadPool pool{2};
  pool.bind_metrics(registry, "pool");

  constexpr std::uint64_t kTasks = 200;
  ThreadPool::TaskGroup group;
  std::atomic<std::uint64_t> ran{0};
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    pool.submit(group, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait(group);
  ASSERT_EQ(ran.load(), kTasks);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("pool.tasks"), kTasks);
  // Every submitted task was drained, so the queue-depth gauge is back to
  // zero; the high-water mark shows at least one task was ever queued.
  EXPECT_EQ(snap.gauges.at("pool.queue_depth").value, 0);
  EXPECT_GE(snap.gauges.at("pool.queue_depth").max, 1);
  // Each task's latency was observed exactly once.
  EXPECT_EQ(snap.histograms.at("pool.task_ms").count, kTasks);
  // Steals are scheduling-dependent but bounded by the task count.
  EXPECT_LE(snap.counters.at("pool.steals"), kTasks);
}

TEST(ThreadPool, UnboundPoolReportsNoMetrics) {
  obs::MetricsRegistry registry;
  ThreadPool pool{2};  // never bound
  ThreadPool::TaskGroup group;
  pool.submit(group, [] {});
  pool.wait(group);
  EXPECT_TRUE(registry.snapshot().counters.empty());
}

TEST(ThreadPool, ChunkSumMatchesSerial) {
  // A floating-point-free reduction: partial sums folded after the barrier
  // equal the serial total regardless of scheduling.
  constexpr std::size_t kN = 4096;
  ThreadPool pool{4};
  std::vector<std::uint64_t> values(kN);
  for (std::size_t i = 0; i < kN; ++i) values[i] = i * i + 1;

  std::uint64_t serial = 0;
  for (const auto v : values) serial += v;

  std::atomic<std::uint64_t> parallel{0};
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    std::uint64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) local += values[i];
    parallel.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(parallel.load(), serial);
}

}  // namespace
}  // namespace seccloud::util
