// Faulty-channel audit sessions: frame integrity, retry/backoff accounting,
// stale/duplicate/corrupt reply classification, and the headline acceptance
// property — with drop/corrupt probability up to 0.3 on every message type
// and a retry budget >= 5, the session reaches the same conclusive verdict
// the lossless channel reaches, for honest and cheating servers alike, and
// every run is bit-reproducible from its seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ibc/keys.h"
#include "seccloud/client.h"
#include "seccloud/session.h"
#include "sim/session_link.h"

namespace seccloud {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;

/// The acceptance-criteria channel: every fault class armed on every message
/// type, drop and corruption at the 0.3 ceiling.
sim::FaultPlan harsh_plan() {
  sim::FaultPlan plan;
  plan.base.drop = 0.3;
  plan.base.bit_flip = 0.3;
  plan.base.truncate = 0.15;
  plan.base.duplicate = 0.2;
  plan.base.reorder = 0.2;
  plan.base.delay = 0.15;
  return plan;
}

core::RetryPolicy budget(std::size_t max_attempts) {
  core::RetryPolicy policy;
  policy.max_attempts = max_attempts;
  return policy;
}

class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : g(tiny_group()),
        rng(4242),
        sio(g, rng),
        user_key(sio.extract("user@session")),
        server_key(sio.extract("cs@session")),
        da_key(sio.extract("da@session")),
        client(g, sio.params(), user_key, server_key.q_id, da_key.q_id) {
    std::vector<core::DataBlock> raw;
    for (std::uint64_t i = 0; i < 32; ++i) {
      raw.push_back(core::DataBlock::from_value(i, 11 * i + 3));
    }
    blocks = client.sign_blocks(std::move(raw), rng);
    for (std::uint64_t i = 0; i < 12; ++i) {
      core::ComputeRequest req;
      req.kind = static_cast<core::FuncKind>(i % 6);
      req.positions.push_back((2 * i) % 32);
      req.positions.push_back((2 * i + 1) % 32);
      task.requests.push_back(std::move(req));
    }
  }

  struct Run {
    core::SessionReport report;
    sim::FaultTally tally;
  };

  Run run_computation(const sim::ServerBehavior& behavior, const sim::FaultPlan& plan,
                      std::uint64_t seed, const core::RetryPolicy& policy,
                      std::uint64_t warrant_expiry = 50) const {
    sim::SimCloudServer server{g, server_key, "cs", behavior, seed ^ 0xC0FFEE};
    server.handle_store(user_key.id, blocks);
    Xoshiro256 compute_rng{seed + 1};
    const auto outcome =
        server.handle_compute(user_key.id, user_key.q_id, da_key.q_id, task, compute_rng);
    const core::Warrant warrant = client.make_warrant(da_key.id, warrant_expiry, compute_rng);
    sim::FaultyAuditLink link{g, server, plan, seed + 2};
    link.bind_computation(user_key.q_id, outcome.task_id, /*epoch=*/1);
    core::AuditSession session{g, policy};
    Xoshiro256 session_rng{seed};
    Run run;
    run.report = session.run_computation_audit(
        link, user_key.q_id, server.q_id(), task, outcome.commitment, warrant,
        /*sample_size=*/6, da_key, core::SignatureCheckMode::kBatch, session_rng);
    run.tally = link.tally();
    return run;
  }

  Run run_storage(const sim::ServerBehavior& behavior, const sim::FaultPlan& plan,
                  std::uint64_t seed, const core::RetryPolicy& policy) const {
    sim::SimCloudServer server{g, server_key, "cs", behavior, seed ^ 0xC0FFEE};
    server.handle_store(user_key.id, blocks);
    sim::FaultyAuditLink link{g, server, plan, seed + 2};
    link.bind_storage(user_key.q_id, user_key.id);
    core::AuditSession session{g, policy};
    Xoshiro256 session_rng{seed};
    Run run;
    run.report = session.run_storage_audit(link, user_key.q_id, /*universe=*/32,
                                           /*sample_size=*/8, da_key,
                                           core::SignatureCheckMode::kBatch, session_rng);
    run.tally = link.tally();
    return run;
  }

  static sim::ServerBehavior always_guessing() {
    sim::ServerBehavior cheat;
    cheat.honest_compute_fraction = 0.0;  // every sub-task result is a bad guess
    return cheat;
  }

  static sim::ServerBehavior always_corrupting() {
    sim::ServerBehavior cheat;
    cheat.corrupt_fraction = 1.0;  // every stored payload is tampered
    return cheat;
  }

  const pairing::PairingGroup& g;
  Xoshiro256 rng;
  ibc::Sio sio;
  ibc::IdentityKey user_key;
  ibc::IdentityKey server_key;
  ibc::IdentityKey da_key;
  core::UserClient client;
  std::vector<core::SignedBlock> blocks;
  core::ComputationTask task;
};

// --- framing ---------------------------------------------------------------

TEST(SessionFrameTest, RoundTrip) {
  const core::Bytes payload{1, 2, 3, 4, 5};
  const core::Bytes wire =
      core::encode_frame(core::MessageType::kAuditChallenge, 0xDEADBEEF, 7, payload);
  const auto frame = core::decode_frame(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, core::MessageType::kAuditChallenge);
  EXPECT_EQ(frame->session_id, 0xDEADBEEFu);
  EXPECT_EQ(frame->seq, 7u);
  EXPECT_EQ(frame->payload, payload);
}

TEST(SessionFrameTest, EmptyPayloadRoundTrips) {
  const core::Bytes wire =
      core::encode_frame(core::MessageType::kStorageResponse, 1, 1, core::Bytes{});
  const auto frame = core::decode_frame(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->payload.empty());
}

TEST(SessionFrameTest, EverySingleByteCorruptionIsDetected) {
  const core::Bytes payload{9, 8, 7, 6, 5, 4, 3, 2, 1};
  const core::Bytes wire =
      core::encode_frame(core::MessageType::kStorageChallenge, 42, 3, payload);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
      core::Bytes mutated = wire;
      mutated[i] ^= mask;  // always changes the byte
      EXPECT_FALSE(core::decode_frame(mutated).has_value())
          << "byte " << i << " mask " << int(mask);
    }
  }
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        core::decode_frame(std::span<const std::uint8_t>(wire.data(), cut)).has_value());
  }
}

// --- retry policy ----------------------------------------------------------

TEST(RetryPolicyTest, ExponentialBackoffWithCap) {
  const core::RetryPolicy policy;  // base 50, factor 2, cap 1600
  EXPECT_EQ(policy.backoff_for(0), 0u);
  EXPECT_EQ(policy.backoff_for(1), 50u);
  EXPECT_EQ(policy.backoff_for(2), 100u);
  EXPECT_EQ(policy.backoff_for(3), 200u);
  EXPECT_EQ(policy.backoff_for(5), 800u);
  EXPECT_EQ(policy.backoff_for(6), 1600u);
  EXPECT_EQ(policy.backoff_for(7), 1600u);  // capped
  EXPECT_EQ(policy.backoff_for(50), 1600u);
}

// --- lossless baseline -----------------------------------------------------

TEST_F(SessionTest, LosslessHonestAcceptsOnFirstAttempt) {
  const Run run = run_computation(sim::ServerBehavior::honest(),
                                  sim::FaultPlan::lossless(), 1, budget(5));
  EXPECT_EQ(run.report.verdict, core::SessionVerdict::kAccepted);
  EXPECT_EQ(run.report.attempts, 1u);
  EXPECT_EQ(run.report.timeouts, 0u);
  EXPECT_EQ(run.report.corrupt_frames, 0u);
  EXPECT_EQ(run.report.waited_units, 0u);
  EXPECT_TRUE(run.report.computation.accepted);
  EXPECT_EQ(run.tally.dropped, 0u);
  EXPECT_EQ(run.tally.offered, run.tally.delivered);
}

TEST_F(SessionTest, LosslessGuessingServerRejectedOnFirstAttempt) {
  const Run run =
      run_computation(always_guessing(), sim::FaultPlan::lossless(), 1, budget(5));
  EXPECT_EQ(run.report.verdict, core::SessionVerdict::kRejected);
  EXPECT_EQ(run.report.attempts, 1u);
  EXPECT_FALSE(run.report.computation.accepted);
}

// --- the acceptance criterion ---------------------------------------------

TEST_F(SessionTest, HarshChannelMatchesLosslessVerdictAcrossSeeds) {
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    const Run lossless_honest = run_computation(sim::ServerBehavior::honest(),
                                                sim::FaultPlan::lossless(), seed, budget(1));
    const Run faulty_honest =
        run_computation(sim::ServerBehavior::honest(), harsh_plan(), seed, budget(16));
    ASSERT_TRUE(faulty_honest.report.conclusive()) << "seed " << seed;
    EXPECT_EQ(faulty_honest.report.verdict, lossless_honest.report.verdict)
        << "seed " << seed;
    EXPECT_EQ(faulty_honest.report.verdict, core::SessionVerdict::kAccepted);

    const Run lossless_cheat =
        run_computation(always_guessing(), sim::FaultPlan::lossless(), seed, budget(1));
    const Run faulty_cheat =
        run_computation(always_guessing(), harsh_plan(), seed, budget(16));
    ASSERT_TRUE(faulty_cheat.report.conclusive()) << "seed " << seed;
    EXPECT_EQ(faulty_cheat.report.verdict, lossless_cheat.report.verdict) << "seed " << seed;
    EXPECT_EQ(faulty_cheat.report.verdict, core::SessionVerdict::kRejected);
  }
}

TEST_F(SessionTest, HarshChannelStorageAuditMatchesLosslessAcrossSeeds) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const Run honest = run_storage(sim::ServerBehavior::honest(), harsh_plan(), seed,
                                   budget(16));
    ASSERT_TRUE(honest.report.conclusive()) << "seed " << seed;
    EXPECT_EQ(honest.report.verdict, core::SessionVerdict::kAccepted) << "seed " << seed;

    const Run cheat = run_storage(always_corrupting(), harsh_plan(), seed, budget(16));
    ASSERT_TRUE(cheat.report.conclusive()) << "seed " << seed;
    EXPECT_EQ(cheat.report.verdict, core::SessionVerdict::kRejected) << "seed " << seed;
    EXPECT_FALSE(cheat.report.storage.accepted);
  }
}

TEST_F(SessionTest, SessionsAreBitReproducibleFromSeed) {
  for (const bool cheating : {false, true}) {
    const sim::ServerBehavior behavior =
        cheating ? always_guessing() : sim::ServerBehavior::honest();
    const Run a = run_computation(behavior, harsh_plan(), 909, budget(16));
    const Run b = run_computation(behavior, harsh_plan(), 909, budget(16));
    EXPECT_EQ(a.report.verdict, b.report.verdict);
    EXPECT_EQ(a.report.attempts, b.report.attempts);
    EXPECT_EQ(a.report.timeouts, b.report.timeouts);
    EXPECT_EQ(a.report.corrupt_frames, b.report.corrupt_frames);
    EXPECT_EQ(a.report.stale_replies, b.report.stale_replies);
    EXPECT_EQ(a.report.duplicate_replies, b.report.duplicate_replies);
    EXPECT_EQ(a.report.malformed_replies, b.report.malformed_replies);
    EXPECT_EQ(a.report.waited_units, b.report.waited_units);
    EXPECT_EQ(a.report.bytes_sent, b.report.bytes_sent);
    EXPECT_EQ(a.report.bytes_received, b.report.bytes_received);
    EXPECT_EQ(a.tally.offered, b.tally.offered);
    EXPECT_EQ(a.tally.delivered, b.tally.delivered);
    EXPECT_EQ(a.tally.dropped, b.tally.dropped);
    EXPECT_EQ(a.tally.truncated, b.tally.truncated);
    EXPECT_EQ(a.tally.corrupted, b.tally.corrupted);
    EXPECT_EQ(a.tally.duplicated, b.tally.duplicated);
    EXPECT_EQ(a.tally.reordered, b.tally.reordered);
    EXPECT_EQ(a.tally.delayed, b.tally.delayed);
  }
}

// --- fault classification --------------------------------------------------

TEST_F(SessionTest, TotalBlackoutExhaustsBudgetInconclusively) {
  sim::FaultPlan blackout;
  blackout.base.drop = 1.0;
  const Run run =
      run_computation(sim::ServerBehavior::honest(), blackout, 5, budget(6));
  EXPECT_EQ(run.report.verdict, core::SessionVerdict::kInconclusive);
  EXPECT_FALSE(run.report.conclusive());
  EXPECT_EQ(run.report.attempts, 6u);
  EXPECT_EQ(run.report.timeouts, 6u);
  EXPECT_EQ(run.report.bytes_received, 0u);
  // 6 timeouts plus the backoffs between attempts: 50+100+200+400+800.
  EXPECT_EQ(run.report.waited_units, 6 * 100u + 1550u);
  EXPECT_EQ(run.tally.dropped, run.tally.offered);
  EXPECT_EQ(run.tally.delivered, 0u);
}

TEST_F(SessionTest, TruncatedRepliesAreChannelFaultsAndRetried) {
  sim::FaultPlan plan;  // only the reply path is damaged, deterministically
  sim::FaultSpec reply_fault;
  reply_fault.truncate = 1.0;
  plan.set(core::MessageType::kAuditResponse, reply_fault);
  const Run run =
      run_computation(sim::ServerBehavior::honest(), plan, 11, budget(4));
  EXPECT_EQ(run.report.verdict, core::SessionVerdict::kInconclusive);
  EXPECT_EQ(run.report.attempts, 4u);
  EXPECT_EQ(run.report.corrupt_frames, 4u);  // every reply arrives mangled
  EXPECT_EQ(run.report.timeouts, 4u);        // so every attempt times out
  EXPECT_EQ(run.tally.truncated, 4u);
}

TEST_F(SessionTest, DelayedRepliesFromEarlierAttemptsAreStale) {
  sim::FaultPlan plan;
  sim::FaultSpec reply_fault;
  reply_fault.delay = 1.0;  // every reply misses its own attempt's window
  plan.set(core::MessageType::kAuditResponse, reply_fault);
  const Run run =
      run_computation(sim::ServerBehavior::honest(), plan, 13, budget(4));
  EXPECT_EQ(run.report.verdict, core::SessionVerdict::kInconclusive);
  EXPECT_EQ(run.report.attempts, 4u);
  // Attempts 2..4 each see the previous attempt's late reply: stale, not
  // verified against the wrong challenge.
  EXPECT_EQ(run.report.stale_replies, 3u);
  EXPECT_EQ(run.report.timeouts, 4u);
  EXPECT_EQ(run.tally.delayed, 4u);
}

TEST_F(SessionTest, DuplicatedReplyIsCountedOnceAndStillConcludes) {
  sim::FaultPlan plan;
  sim::FaultSpec reply_fault;
  reply_fault.duplicate = 1.0;
  plan.set(core::MessageType::kAuditResponse, reply_fault);
  const Run run =
      run_computation(sim::ServerBehavior::honest(), plan, 17, budget(4));
  EXPECT_EQ(run.report.verdict, core::SessionVerdict::kAccepted);
  EXPECT_EQ(run.report.attempts, 1u);
  EXPECT_EQ(run.report.duplicate_replies, 1u);
  EXPECT_EQ(run.tally.duplicated, 1u);
}

TEST_F(SessionTest, ExpiredWarrantIsConclusiveRejectionEvenOverFaultyChannel) {
  // The server refuses the expired warrant inside a checksum-valid frame:
  // attributable, so the verdict is kRejected — never kInconclusive.
  const Run run = run_computation(sim::ServerBehavior::honest(), harsh_plan(), 23,
                                  budget(16), /*warrant_expiry=*/0);
  EXPECT_EQ(run.report.verdict, core::SessionVerdict::kRejected);
  EXPECT_TRUE(run.report.computation.warrant_rejected);
}

// --- attempt timestamps ----------------------------------------------------

TEST_F(SessionTest, AttemptTimestampsFollowTheSessionClock) {
  // Find a seed whose storage session needs several attempts, then check the
  // wall-clock stamps: one per attempt, spaced exactly by the waits the
  // policy charged (timeout + backoff), starting at the clock origin.
  const core::RetryPolicy policy = budget(16);
  Run run;
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate <= 64; ++candidate) {
    run = run_storage(sim::ServerBehavior::honest(), harsh_plan(), candidate, policy);
    if (run.report.attempts >= 3 && run.report.conclusive()) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed produced a multi-attempt session";

  const auto& stamps = run.report.attempt_started_units;
  ASSERT_EQ(stamps.size(), run.report.attempts);
  EXPECT_EQ(stamps.front(), 0u);  // default clock origin
  for (std::size_t k = 1; k < stamps.size(); ++k) {
    // Attempt k failed, charging its timeout plus the backoff before k+1.
    EXPECT_EQ(stamps[k] - stamps[k - 1], policy.timeout_units + policy.backoff_for(k))
        << "attempt " << k + 1;
  }
  EXPECT_LE(stamps.back(), run.report.waited_units);  // stamps never outrun the waits

  // An injected clock shifts every stamp by its origin and nothing else.
  sim::SimCloudServer server{g, server_key, "cs", sim::ServerBehavior::honest(),
                             seed ^ 0xC0FFEE};
  server.handle_store(user_key.id, blocks);
  sim::FaultyAuditLink link{g, server, harsh_plan(), seed + 2};
  link.bind_storage(user_key.q_id, user_key.id);
  core::AuditSession session{g, policy};
  core::SimulatedClock clock{500};
  session.set_clock(&clock);
  Xoshiro256 session_rng{seed};
  const auto shifted = session.run_storage_audit(link, user_key.q_id, 32, 8, da_key,
                                                 core::SignatureCheckMode::kBatch,
                                                 session_rng);
  ASSERT_EQ(shifted.attempt_started_units.size(), stamps.size());
  for (std::size_t k = 0; k < stamps.size(); ++k) {
    EXPECT_EQ(shifted.attempt_started_units[k], stamps[k] + 500) << "attempt " << k + 1;
  }

  // The stamps are part of the machine-readable report.
  const std::string json = run.report.to_json();
  EXPECT_NE(json.find("\"attempt_started_units\""), std::string::npos);
}

// --- Monte-Carlo wiring ----------------------------------------------------

TEST(FaultyTrialsTest, DeterministicPerSeedAndConclusiveUnderRetries) {
  const auto& g = tiny_group();
  sim::FaultyTrialConfig config;
  config.plan = sim::FaultPlan::uniform_loss(0.2);
  config.policy.max_attempts = 8;
  config.behavior.honest_compute_fraction = 0.0;
  const auto a = sim::run_faulty_audit_trials(g, config, 6, 2024);
  const auto b = sim::run_faulty_audit_trials(g, config, 6, 2024);
  EXPECT_EQ(a.trials, 6u);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.inconclusive, b.inconclusive);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.waited_units, b.waited_units);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.bytes_received, b.bytes_received);
  EXPECT_EQ(a.channel.dropped, b.channel.dropped);
  EXPECT_EQ(a.channel.corrupted, b.channel.corrupted);
  EXPECT_EQ(a.accepted, 0u);  // a guessing server is never accepted
  EXPECT_GT(a.rejected, 0u);

  const auto c = sim::run_faulty_audit_trials(g, config, 6, 2025);
  EXPECT_TRUE(c.attempts != a.attempts || c.channel.dropped != a.channel.dropped ||
              c.rejected != a.rejected);
}

}  // namespace
}  // namespace seccloud
