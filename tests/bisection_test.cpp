// Batch-verify fallback with bisection: when the one-pairing aggregate check
// (Eq. 8/9) rejects, dv_batch_isolate must return the exact invalid entry
// set at O(k·log n) pairing cost — measurably cheaper than re-verifying all
// n individually — and the auditor layer must surface the per-entry verdict
// in its reports, bit-identically between the serial and parallel paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bigint/rng.h"
#include "ibc/dvs.h"
#include "ibc/ibs.h"
#include "ibc/keys.h"
#include "pairing/group.h"
#include "pairing/parallel.h"
#include "seccloud/auditor.h"
#include "seccloud/client.h"
#include "sim/server.h"

namespace seccloud {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;

// --- the pure divide-and-conquer kernel ------------------------------------

TEST(BisectInvalidTest, IsolatesExactSetWithMonotoneOracle) {
  const std::vector<std::vector<std::size_t>> cases = {
      {}, {0}, {6}, {0, 6}, {2, 3}, {0, 1, 2, 3, 4, 5, 6}};
  for (const auto& bad : cases) {
    const std::size_t n = 7;
    ibc::BisectionStats stats;
    const auto oracle = [&](std::size_t lo, std::size_t hi) {
      return std::none_of(bad.begin(), bad.end(),
                          [&](std::size_t b) { return lo <= b && b < hi; });
    };
    EXPECT_EQ(ibc::bisect_invalid(n, oracle, &stats), bad);
    EXPECT_GE(stats.oracle_calls, 1u);
  }
  // Empty input: no oracle calls at all.
  ibc::BisectionStats stats;
  EXPECT_TRUE(ibc::bisect_invalid(0, [](std::size_t, std::size_t) { return true; }, &stats)
                  .empty());
  EXPECT_EQ(stats.oracle_calls, 0u);
}

TEST(BisectInvalidTest, CostIsLogarithmicForFewBadMembers) {
  // k bad of n must cost O(k·log n) oracle calls, far below n for small k.
  const std::size_t n = 1024;
  const std::vector<std::size_t> bad = {37, 512, 900};
  ibc::BisectionStats stats;
  const auto oracle = [&](std::size_t lo, std::size_t hi) {
    return std::none_of(bad.begin(), bad.end(),
                        [&](std::size_t b) { return lo <= b && b < hi; });
  };
  EXPECT_EQ(ibc::bisect_invalid(n, oracle, &stats), bad);
  // Each bad member opens at most 2 calls per level plus shared prefixes:
  // comfortably under k·2·(log2 n + 1) = 66, and far under n = 1024.
  EXPECT_LE(stats.oracle_calls, bad.size() * 2 * 11);
  EXPECT_LE(stats.max_depth, 10u);  // log2(1024)
}

// --- DVS batch isolation (the acceptance criterion) ------------------------

struct DvBatch {
  std::vector<core::Bytes> messages;
  std::vector<ibc::DvSignature> sigs;
  std::vector<ibc::BatchEntry> entries;
};

/// Builds n valid (message, Σ) pairs for one signer/verifier, then corrupts
/// the signatures at `bad` by perturbing Σ.
DvBatch make_batch(const pairing::PairingGroup& g, const ibc::IdentityKey& signer,
                   const ibc::IdentityKey& verifier, std::size_t n,
                   const std::vector<std::size_t>& bad, Xoshiro256& rng) {
  DvBatch batch;
  batch.messages.reserve(n);
  batch.sigs.reserve(n);
  batch.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.messages.push_back({static_cast<std::uint8_t>(i), 'm', 's', 'g',
                              static_cast<std::uint8_t>(i >> 8)});
    const ibc::IbsSignature ibs = ibc::ibs_sign(g, signer, batch.messages.back(), rng);
    batch.sigs.push_back(ibc::dv_transform(g, ibs, verifier.q_id));
  }
  for (const std::size_t i : bad) {
    batch.sigs[i].sigma = g.gt_mul(batch.sigs[i].sigma, batch.sigs[i].sigma);
  }
  for (std::size_t i = 0; i < n; ++i) {
    batch.entries.push_back({signer.q_id, batch.messages[i], &batch.sigs[i]});
  }
  return batch;
}

TEST(DvBatchIsolateTest, SixtyFourEntryBatchWithThreeCorrupted) {
  Xoshiro256 rng{801};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto signer = sio.extract("user@bisect");
  const auto verifier = sio.extract("da@bisect");
  const std::vector<std::size_t> bad = {3, 17, 42};
  const DvBatch batch = make_batch(g, signer, verifier, 64, bad, rng);

  ASSERT_FALSE(ibc::dv_batch_verify(g, batch.entries, verifier));

  // Exactly the 3 corrupted entries are isolated; the other 61 are valid.
  g.reset_counters();
  ibc::BisectionStats stats;
  const auto invalid = ibc::dv_batch_isolate(g, batch.entries, verifier, &stats);
  const auto bisect_ops = g.counters();
  EXPECT_EQ(invalid, bad);
  for (std::size_t i = 0; i < 64; ++i) {
    const bool flagged = std::find(invalid.begin(), invalid.end(), i) != invalid.end();
    EXPECT_EQ(ibc::dv_verify(g, signer.q_id, batch.messages[i], *batch.entries[i].sig,
                             verifier),
              !flagged);
  }

  // Pairing accounting: one pairing per oracle call, measurably fewer than
  // the 64 pairings of individual re-verification.
  g.reset_counters();
  for (const auto& entry : batch.entries) {
    (void)ibc::dv_verify(g, entry.signer_q_id, entry.message, *entry.sig, verifier);
  }
  const auto individual_ops = g.counters();
  EXPECT_EQ(individual_ops.pairings, 64u);
  EXPECT_EQ(bisect_ops.pairings, stats.oracle_calls);
  EXPECT_LT(bisect_ops.pairings, individual_ops.pairings);
  EXPECT_LE(stats.max_depth, 6u);  // log2(64)
}

TEST(DvBatchIsolateTest, SerialAndParallelAreBitIdentical) {
  Xoshiro256 rng{802};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto signer = sio.extract("user@bisect-par");
  const auto verifier = sio.extract("da@bisect-par");
  const DvBatch batch = make_batch(g, signer, verifier, 24, {1, 9, 20, 21}, rng);

  g.reset_counters();
  ibc::BisectionStats serial_stats;
  const auto serial = ibc::dv_batch_isolate(g, batch.entries, verifier, &serial_stats);
  const auto serial_ops = g.counters();

  for (const std::size_t threads : {1u, 2u, 4u}) {
    const pairing::ParallelPairingEngine engine{g, threads};
    g.reset_counters();
    ibc::BisectionStats par_stats;
    const auto par = ibc::dv_batch_isolate(engine, batch.entries, verifier, &par_stats);
    const auto par_ops = g.counters();
    EXPECT_EQ(par, serial);
    EXPECT_EQ(par_stats, serial_stats);
    EXPECT_EQ(par_ops.pairings, serial_ops.pairings);
    EXPECT_EQ(par_ops.point_muls, serial_ops.point_muls);
    EXPECT_EQ(par_ops.gt_exps, serial_ops.gt_exps);
  }
}

TEST(DvBatchIsolateTest, CancellationForgeryEvadesTheAggregate) {
  // The known batch-verification caveat: corruptions that cancel in the
  // product Σ_A — swapping two sigmas is the simplest — pass the one-pairing
  // check even though both entries fail individually, so the fallback never
  // triggers. Isolation likewise reports nothing, because the full aggregate
  // is its root oracle. This is exactly why batch mode is a screening tool
  // and a clean isolation result does not certify each member.
  Xoshiro256 rng{803};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto signer = sio.extract("user@forge");
  const auto verifier = sio.extract("da@forge");
  DvBatch batch = make_batch(g, signer, verifier, 8, {}, rng);
  std::swap(batch.sigs[2].sigma, batch.sigs[5].sigma);

  EXPECT_FALSE(ibc::dv_verify(g, signer.q_id, batch.messages[2], batch.sigs[2], verifier));
  EXPECT_FALSE(ibc::dv_verify(g, signer.q_id, batch.messages[5], batch.sigs[5], verifier));
  EXPECT_TRUE(ibc::dv_batch_verify(g, batch.entries, verifier));
  EXPECT_TRUE(ibc::dv_batch_isolate(g, batch.entries, verifier, nullptr).empty());
}

// --- auditor integration ----------------------------------------------------

TEST(AuditorBisectionTest, StorageAuditReportsPerEntryVerdicts) {
  Xoshiro256 rng{804};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto user = sio.extract("user@audit-bisect");
  const auto server = sio.extract("cs@audit-bisect");
  const auto da = sio.extract("da@audit-bisect");
  const core::UserClient client{g, sio.params(), user, server.q_id, da.q_id};

  std::vector<core::DataBlock> raw;
  for (std::uint64_t i = 0; i < 32; ++i) raw.push_back(core::DataBlock::from_value(i, i + 9));
  std::vector<core::SignedBlock> blocks = client.sign_blocks(raw, rng);
  const std::vector<std::size_t> bad = {4, 21};
  for (const std::size_t i : bad) blocks[i].block.payload[0] ^= 0x3C;

  const auto serial = core::verify_storage_audit(g, user.q_id, blocks, da,
                                                 core::VerifierRole::kDesignatedAgency,
                                                 core::SignatureCheckMode::kBatch);
  EXPECT_FALSE(serial.accepted);
  EXPECT_EQ(serial.invalid_signature_entries, bad);
  EXPECT_EQ(serial.signature_failures, bad.size());
  EXPECT_GE(serial.bisection.oracle_calls, 1u);
  // Fewer pairings than the 16-strong individual sweep would cost (1 for
  // the failed aggregate + the bisection oracle calls).
  EXPECT_LT(serial.ops.pairings, blocks.size());

  const pairing::ParallelPairingEngine engine{g, 3};
  const auto parallel = core::verify_storage_audit(engine, user.q_id, blocks, da,
                                                   core::VerifierRole::kDesignatedAgency,
                                                   core::SignatureCheckMode::kBatch);
  EXPECT_EQ(parallel.invalid_signature_entries, serial.invalid_signature_entries);
  EXPECT_EQ(parallel.bisection, serial.bisection);
  EXPECT_EQ(parallel.ops.pairings, serial.ops.pairings);
  EXPECT_EQ(parallel.ops.point_muls, serial.ops.point_muls);
}

TEST(AuditorBisectionTest, ComputationAuditAttributesByzantineTampering) {
  Xoshiro256 rng{805};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto user = sio.extract("user@byz");
  const auto server_key = sio.extract("cs@byz");
  const auto da = sio.extract("da@byz");
  const core::UserClient client{g, sio.params(), user, server_key.q_id, da.q_id};

  std::vector<core::DataBlock> raw;
  for (std::uint64_t i = 0; i < 12; ++i) raw.push_back(core::DataBlock::from_value(i, 2 * i + 5));
  const auto blocks = client.sign_blocks(raw, rng);

  // Byzantine server: tampers exactly the blocks at positions 3 and 7.
  sim::ServerBehavior behavior;
  behavior.bad_signature_indices = {3, 7};
  EXPECT_FALSE(behavior.is_honest());
  sim::SimCloudServer srv{g, server_key, "cs-byz", behavior, 99};
  srv.handle_store(user.id, blocks);

  core::ComputationTask task;
  for (std::size_t i = 0; i < 6; ++i) {
    core::ComputeRequest req;
    req.kind = core::FuncKind::kSum;
    req.positions = {2 * i, 2 * i + 1};
    task.requests.push_back(std::move(req));
  }
  const auto outcome = srv.handle_compute(user.id, user.q_id, da.q_id, task, rng);
  const core::Warrant warrant = client.make_warrant(da.id, 100, rng);
  const auto challenge = core::make_challenge(task.requests.size(), task.requests.size(),
                                              warrant, rng);
  const auto response = srv.handle_audit(user.q_id, outcome.task_id, challenge, 1);

  const auto report = core::verify_computation_audit(g, user.q_id, server_key.q_id, task,
                                                     outcome.commitment, challenge,
                                                     response, da,
                                                     core::SignatureCheckMode::kBatch);
  // The tampered payloads stayed computation-consistent: only the signature
  // check fails, and bisection attributes exactly the tampered entries.
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.computation_failures, 0u);
  std::vector<std::size_t> expected;
  std::size_t entry = 0;
  for (const auto& item : response.items) {
    for (const auto& input : item.inputs) {
      if (input.block.index == 3 || input.block.index == 7) expected.push_back(entry);
      ++entry;
    }
  }
  EXPECT_EQ(report.invalid_signature_entries, expected);
  EXPECT_EQ(report.signature_failures, expected.size());
}

TEST(AuditorBisectionTest, ByzantineMerkleEquivocationAndStaleReplayDetected) {
  Xoshiro256 rng{806};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto user = sio.extract("user@equiv");
  const auto server_key = sio.extract("cs@equiv");
  const auto da = sio.extract("da@equiv");
  const core::UserClient client{g, sio.params(), user, server_key.q_id, da.q_id};

  std::vector<core::DataBlock> raw;
  for (std::uint64_t i = 0; i < 8; ++i) raw.push_back(core::DataBlock::from_value(i, i + 1));
  const auto blocks = client.sign_blocks(raw, rng);

  core::ComputationTask task;
  for (std::size_t i = 0; i < 4; ++i) {
    core::ComputeRequest req;
    req.kind = core::FuncKind::kSum;
    req.positions = {2 * i, 2 * i + 1};
    task.requests.push_back(std::move(req));
  }

  // Equivocating Merkle proofs → root failures.
  {
    sim::ServerBehavior behavior;
    behavior.equivocate_merkle = true;
    sim::SimCloudServer srv{g, server_key, "cs-equiv", behavior, 7};
    srv.handle_store(user.id, blocks);
    const auto outcome = srv.handle_compute(user.id, user.q_id, da.q_id, task, rng);
    const core::Warrant warrant = client.make_warrant(da.id, 100, rng);
    const auto challenge = core::make_challenge(task.requests.size(), 3, warrant, rng);
    const auto response = srv.handle_audit(user.q_id, outcome.task_id, challenge, 1);
    const auto report = core::verify_computation_audit(g, user.q_id, server_key.q_id,
                                                       task, outcome.commitment, challenge,
                                                       response, da,
                                                       core::SignatureCheckMode::kBatch);
    EXPECT_FALSE(report.accepted);
    EXPECT_GE(report.root_failures, 1u);
  }

  // Stale-commit replay: a second task's audit is answered from the first
  // task's record; the challenged commitment contradicts the replayed proofs.
  {
    sim::ServerBehavior behavior;
    behavior.replay_stale_commit = true;
    sim::SimCloudServer srv{g, server_key, "cs-stale", behavior, 8};
    srv.handle_store(user.id, blocks);
    const auto first = srv.handle_compute(user.id, user.q_id, da.q_id, task, rng);
    core::ComputationTask other = task;
    other.requests[0].positions = {5, 6};  // the second execution differs
    const auto second = srv.handle_compute(user.id, user.q_id, da.q_id, other, rng);
    ASSERT_NE(first.task_id, second.task_id);
    const core::Warrant warrant = client.make_warrant(da.id, 100, rng);
    const auto challenge =
        core::make_challenge(other.requests.size(), other.requests.size(), warrant, rng);
    const auto response = srv.handle_audit(user.q_id, second.task_id, challenge, 1);
    const auto report = core::verify_computation_audit(g, user.q_id, server_key.q_id,
                                                       other, second.commitment, challenge,
                                                       response, da,
                                                       core::SignatureCheckMode::kBatch);
    EXPECT_FALSE(report.accepted);
  }
}

}  // namespace
}  // namespace seccloud
