// Cost-attribution profiler tests: the ProfileSpan op-delta plumbing, the
// call-path aggregation math (inclusive/exclusive time and ops, saturating),
// the collapsed-stack / JSON exports, and the two determinism guarantees —
// identical runs produce identical traces AND profiles under the
// deterministic clock, and the attributed op totals are thread-count
// invariant for the parallel engine (every worker chunk accounts exactly its
// own ops via the per-thread mirror).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "obs/trace.h"
#include "pairing/parallel.h"

namespace seccloud {
namespace {

using num::Xoshiro256;
using obs::Profile;
using obs::ProfileSpan;
using obs::TraceEvent;
using pairing::OpCounters;
using pairing::tiny_group;

pairing::Point random_point(const pairing::PairingGroup& g, num::RandomSource& rng) {
  return g.mul(g.random_scalar(rng), g.generator());
}

TraceEvent span_event(std::string name, std::uint64_t ts, std::uint64_t dur,
                      std::uint32_t tid, std::uint32_t depth,
                      std::vector<std::pair<std::string, std::string>> args = {}) {
  TraceEvent event;
  event.name = std::move(name);
  event.kind = obs::EventKind::kSpan;
  event.ts_us = ts;
  event.dur_us = dur;
  event.tid = tid;
  event.depth = depth;
  event.args = std::move(args);
  return event;
}

const obs::PathStats* find_path(const Profile& profile, std::string_view path) {
  for (const auto& stats : profile.paths()) {
    if (stats.path == path) return &stats;
  }
  return nullptr;
}

const obs::PhaseStats* find_phase(const std::vector<obs::PhaseStats>& phases,
                                  std::string_view name) {
  for (const auto& phase : phases) {
    if (phase.name == name) return &phase;
  }
  return nullptr;
}

// --- ProfileSpan -----------------------------------------------------------

TEST(ProfileSpan, InertWithoutTracer) {
  ASSERT_EQ(obs::current_tracer(), nullptr);
  ProfileSpan span = obs::profile_span("nothing");
  EXPECT_FALSE(span);
  span.arg("k", "v");  // must be harmless no-ops
  span.end();
}

TEST(ProfileSpan, AttachesOpDeltasAsArgs) {
  const auto& g = tiny_group();
  Xoshiro256 rng{7};
  const pairing::Point p = random_point(g, rng);
  const pairing::Point q = random_point(g, rng);

  obs::Tracer tracer{obs::Tracer::Clock::kDeterministic};
  {
    obs::TracerScope scope{&tracer};
    ProfileSpan span = obs::profile_span("paired");
    ASSERT_TRUE(span);
    (void)g.pair(p, q);
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  // pair() bumps the derived pairings counter plus its two stages.
  std::map<std::string, std::string> args(events[0].args.begin(), events[0].args.end());
  EXPECT_EQ(args.at("ops.pairings"), "1");
  EXPECT_EQ(args.at("ops.miller_loops"), "1");
  EXPECT_EQ(args.at("ops.final_exps"), "1");
  // Zero-valued fields must be absent, not "0".
  EXPECT_EQ(args.count("ops.hash_to_points"), 0u);
}

TEST(ProfileSpan, NestedSpansSeeInclusiveDeltas) {
  const auto& g = tiny_group();
  Xoshiro256 rng{11};
  const pairing::Point p = random_point(g, rng);
  const pairing::Point q = random_point(g, rng);

  obs::Tracer tracer{obs::Tracer::Clock::kDeterministic};
  {
    obs::TracerScope scope{&tracer};
    ProfileSpan outer = obs::profile_span("outer");
    (void)g.mul(num::BigUint{3}, p);
    {
      ProfileSpan inner = obs::profile_span("inner");
      (void)g.pair(p, q);
    }
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // events() sorts parents first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  std::map<std::string, std::string> outer_args(events[0].args.begin(),
                                                events[0].args.end());
  std::map<std::string, std::string> inner_args(events[1].args.begin(),
                                                events[1].args.end());
  // The span arg carries the INCLUSIVE delta; exclusive attribution happens
  // at aggregation time.
  EXPECT_EQ(outer_args.at("ops.pairings"), "1");
  EXPECT_EQ(inner_args.at("ops.pairings"), "1");
  ASSERT_TRUE(outer_args.count("ops.point_muls"));
  EXPECT_GE(std::stoull(outer_args.at("ops.point_muls")), 1u);

  // Aggregation subtracts the child: outer keeps no pairing for itself.
  const Profile profile = Profile::from_tracer(tracer);
  const obs::PathStats* outer_path = find_path(profile, "outer");
  const obs::PathStats* inner_path = find_path(profile, "outer;inner");
  ASSERT_NE(outer_path, nullptr);
  ASSERT_NE(inner_path, nullptr);
  EXPECT_EQ(outer_path->incl_ops.pairings, 1u);
  EXPECT_EQ(outer_path->excl_ops.pairings, 0u);
  EXPECT_EQ(inner_path->excl_ops.pairings, 1u);
}

// --- aggregation math on hand-built events ---------------------------------

TEST(Profile, ExclusiveTimeAndOpsMath) {
  const std::vector<TraceEvent> events = {
      span_event("parent", 0, 100, 0, 0,
                 {{"ops.pairings", "3"}, {"ops.point_muls", "10"}}),
      span_event("child", 10, 30, 0, 1, {{"ops.pairings", "1"}}),
      span_event("child2", 50, 20, 0, 1, {{"ops.point_muls", "4"}}),
      span_event("worker", 5, 50, 1, 0, {{"ops.gt_exps", "2"}}),
  };
  const Profile profile = Profile::from_events(events);
  ASSERT_EQ(profile.paths().size(), 4u);

  const obs::PathStats* parent = find_path(profile, "parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->count, 1u);
  EXPECT_EQ(parent->incl_time, 100u);
  EXPECT_EQ(parent->excl_time, 50u);  // 100 - (30 + 20)
  EXPECT_EQ(parent->incl_ops.pairings, 3u);
  EXPECT_EQ(parent->excl_ops.pairings, 2u);
  EXPECT_EQ(parent->excl_ops.point_muls, 6u);

  const obs::PathStats* worker = find_path(profile, "worker");
  ASSERT_NE(worker, nullptr);  // other thread roots its own path
  EXPECT_EQ(worker->excl_ops.gt_exps, 2u);

  // Totals: every op and tick attributed exactly once.
  const OpCounters total = profile.total_ops();
  EXPECT_EQ(total.pairings, 3u);
  EXPECT_EQ(total.point_muls, 10u);
  EXPECT_EQ(total.gt_exps, 2u);
  EXPECT_EQ(profile.total_time(), 100u + 50u);
}

TEST(Profile, ChildOpsSaturateParentExclusive) {
  // A child claiming more ops than its parent (possible only if the mirror
  // were misused) must clamp the parent's exclusive count to zero, never
  // wrap around.
  const std::vector<TraceEvent> events = {
      span_event("parent", 0, 100, 0, 0, {{"ops.pairings", "1"}}),
      span_event("child", 10, 200, 0, 1, {{"ops.pairings", "5"}}),
  };
  const Profile profile = Profile::from_events(events);
  const obs::PathStats* parent = find_path(profile, "parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->excl_ops.pairings, 0u);
  EXPECT_EQ(parent->excl_time, 0u);
}

TEST(Profile, RepeatedPathsAccumulate) {
  const std::vector<TraceEvent> events = {
      span_event("a", 0, 10, 0, 0, {{"ops.pairings", "1"}}),
      span_event("a", 20, 30, 0, 0, {{"ops.pairings", "2"}}),
  };
  const Profile profile = Profile::from_events(events);
  ASSERT_EQ(profile.paths().size(), 1u);
  EXPECT_EQ(profile.paths()[0].count, 2u);
  EXPECT_EQ(profile.paths()[0].incl_time, 40u);
  EXPECT_EQ(profile.paths()[0].incl_ops.pairings, 3u);
}

TEST(Profile, PhasesAggregateByLeafNameAcrossPaths) {
  const std::vector<TraceEvent> events = {
      span_event("storage", 0, 100, 0, 0),
      span_event("verify", 10, 20, 0, 1, {{"ops.pairings", "1"}}),
      span_event("compute", 200, 100, 0, 0),
      span_event("verify", 210, 40, 0, 1, {{"ops.pairings", "2"}}),
  };
  const std::vector<obs::PhaseStats> phases = Profile::from_events(events).phases();
  const obs::PhaseStats* verify = find_phase(phases, "verify");
  ASSERT_NE(verify, nullptr);
  EXPECT_EQ(verify->count, 2u);
  EXPECT_EQ(verify->incl_time, 60u);
  EXPECT_EQ(verify->incl_ops.pairings, 3u);
}

TEST(Profile, CollapsedStackFormat) {
  const std::vector<TraceEvent> events = {
      span_event("parent", 0, 100, 0, 0),
      span_event("child", 10, 30, 0, 1),
  };
  const std::string collapsed = Profile::from_events(events).to_collapsed();
  EXPECT_NE(collapsed.find("parent 70\n"), std::string::npos);
  EXPECT_NE(collapsed.find("parent;child 30\n"), std::string::npos);
}

TEST(Profile, JsonCarriesPredictedVsMeasured) {
  const std::vector<TraceEvent> events = {
      span_event("verify", 0, 5000, 0, 0, {{"ops.miller_loops", "1"},
                                           {"ops.final_exps", "1"}}),
  };
  const obs::CostTable costs = obs::CostTable::paper_table1();
  const std::string json = Profile::from_events(events).to_json(&costs);
  EXPECT_NE(json.find("\"predicted_vs_measured\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"verify\""), std::string::npos);
  // One full pairing at Table I: 3.105 + 1.035 = T_pair = 4.14 ms (the JSON
  // prints the shortest round-trippable digits, so match only the prefix).
  EXPECT_NE(json.find("\"predicted_ms\":4.1"), std::string::npos);
}

TEST(CostTable, PricesPairingAsMillerPlusFinalExp) {
  const obs::CostTable costs = obs::CostTable::paper_table1();
  OpCounters ops;
  ops.pairings = 1;  // derived counter: must NOT be priced (double count)
  ops.miller_loops = 1;
  ops.final_exps = 1;
  EXPECT_DOUBLE_EQ(costs.predict_ms(ops), 4.14);
  ops.point_muls = 2;
  EXPECT_DOUBLE_EQ(costs.predict_ms(ops), 4.14 + 2 * 0.86);
}

// --- determinism ------------------------------------------------------------

/// A fixed span workload with real crypto ops; bit-identical across runs.
void deterministic_workload(const pairing::PairingGroup& g) {
  Xoshiro256 rng{99};
  const pairing::Point p = random_point(g, rng);
  const pairing::Point q = random_point(g, rng);
  ProfileSpan session = obs::profile_span("session");
  for (int i = 0; i < 2; ++i) {
    ProfileSpan verify = obs::profile_span("verify");
    verify.arg("round", std::to_string(i));
    (void)g.pair(p, q);
    (void)g.mul(num::BigUint{5}, p);
  }
}

TEST(Profile, DeterministicClockRunsAreBitIdentical) {
  const auto& g = tiny_group();
  obs::Tracer first{obs::Tracer::Clock::kDeterministic};
  {
    obs::TracerScope scope{&first};
    deterministic_workload(g);
  }
  obs::Tracer second{obs::Tracer::Clock::kDeterministic};
  {
    obs::TracerScope scope{&second};
    deterministic_workload(g);
  }
  EXPECT_EQ(first.events(), second.events());
  EXPECT_EQ(Profile::from_tracer(first), Profile::from_tracer(second));
  EXPECT_EQ(Profile::from_tracer(first).to_json(), Profile::from_tracer(second).to_json());
}

TEST(Profile, AttributedOpTotalsAreThreadCountInvariant) {
  const auto& g = tiny_group();
  Xoshiro256 rng{123};
  std::vector<std::pair<pairing::Point, pairing::Point>> pairs;
  for (int i = 0; i < 12; ++i) {
    pairs.emplace_back(random_point(g, rng), random_point(g, rng));
  }

  std::vector<OpCounters> totals;
  pairing::Gt expected{};
  for (const std::size_t threads : {1u, 2u, 4u}) {
    obs::Tracer tracer{obs::Tracer::Clock::kDeterministic};
    const pairing::ParallelPairingEngine engine{g, threads};
    pairing::Gt product;
    {
      obs::TracerScope scope{&tracer};
      product = engine.pair_product(pairs);
    }
    if (totals.empty()) {
      expected = product;
    } else {
      EXPECT_EQ(product, expected) << threads << " threads";
    }
    totals.push_back(Profile::from_tracer(tracer).total_ops());
  }
  // Every op lands in exactly one span regardless of how the work is split
  // across workers: the per-thread mirror makes attribution additive.
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[1], totals[0]) << "2 threads vs serial";
  EXPECT_EQ(totals[2], totals[0]) << "4 threads vs serial";
  EXPECT_GT(totals[0].miller_loops, 0u);
}

}  // namespace
}  // namespace seccloud
