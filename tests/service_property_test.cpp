// Property suite (ctest labels: property, concurrency): the cross-user
// shared-batch pipeline must be *bit-identical* to the per-user reference
// path — same verdicts, same isolated-bad-signer set, same op-counter
// totals — across seeds, shard counts, and 1/2/4/8 verification threads.
// The whole point of the service layer is that packing many users into one
// 2-pairing batch changes the COST, never the OUTCOME.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "bigint/rng.h"
#include "ibc/dvs.h"
#include "ibc/keys.h"
#include "pairing/group.h"
#include "seccloud/client.h"
#include "seccloud/service/service.h"
#include "sim/fleet.h"
#include "property_support.h"

namespace seccloud {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;
using service::AuditRequest;
using service::AuditService;
using service::EpochReport;
using service::ServiceConfig;
using sim::FleetBehavior;
using sim::FleetConfig;
using sim::FleetWorkload;

constexpr std::size_t kActiveUsers = 8;
constexpr std::size_t kBlocksPerRequest = 2;

FleetBehavior behavior_for(std::uint64_t seed, std::size_t user) {
  if ((seed + user) % 5 == 0) return FleetBehavior::kBadSignature;
  if ((seed + user) % 7 == 0) return FleetBehavior::kStaleReplay;
  return FleetBehavior::kHonest;
}

/// Everything about an epoch that must not depend on shard count or thread
/// count. Users are identified by id string (handles are shard-dependent).
struct Outcome {
  std::size_t verified = 0;
  std::size_t failed = 0;
  std::size_t stale = 0;
  std::size_t entries = 0;
  std::size_t batches = 0;
  /// (user id, request index, block index), service order.
  std::vector<std::tuple<std::string, std::size_t, std::size_t>> invalid;
  std::vector<std::string> byzantine_ids;
  /// (attestation_valid, aggregate_valid, invalid entry indices) per batch.
  std::vector<std::tuple<bool, bool, std::vector<std::size_t>>> batch_verdicts;
  pairing::OpCounters assembly_ops;
  pairing::OpCounters verify_ops;
  ibc::BisectionStats bisection;

  bool operator==(const Outcome&) const = default;
};

struct EpochRun {
  Outcome outcome;
  /// The traffic that was verified, in admission order (copied pre-submit).
  std::vector<AuditRequest> requests;
};

EpochRun run_epoch(const pairing::PairingGroup& g, const ibc::Sio& sio,
              const ibc::IdentityKey& da, const ibc::IdentityKey& cs,
              std::uint64_t seed, std::size_t shards, std::size_t threads) {
  ServiceConfig config;
  config.registry.shards = shards;
  config.epoch.queue_capacity = 64;
  config.epoch.batch_capacity = 6;  // forces multiple cross-user batches
  config.threads = threads;
  AuditService svc{g, da, cs, config};

  FleetWorkload fleet{sio,
                      FleetConfig{.users = 24,
                                  .active_users = kActiveUsers,
                                  .blocks_per_request = kBlocksPerRequest,
                                  .seed = seed}};
  fleet.populate(svc);
  EpochRun run;
  run.requests = fleet.make_requests(
      svc, [seed](std::size_t i) { return behavior_for(seed, i); });
  for (const AuditRequest& r : run.requests) {
    AuditRequest copy = r;
    EXPECT_TRUE(svc.submit(std::move(copy)).accepted);
  }

  const EpochReport report = svc.run_epoch();
  Outcome& out = run.outcome;
  out.verified = report.verified_requests;
  out.failed = report.failed_requests;
  out.stale = report.stale_rejected;
  out.entries = report.entries;
  out.batches = report.batches;
  for (const auto& inv : report.invalid_entries) {
    out.invalid.emplace_back(std::string{svc.registry().view(inv.user).id},
                             inv.request_index, inv.block_index);
  }
  for (const auto user : report.byzantine_users) {
    out.byzantine_ids.emplace_back(svc.registry().view(user).id);
  }
  // byzantine_users is ordered by handle; handles encode the shard index, so
  // the *order* is shard-dependent even though the set never is.
  std::sort(out.byzantine_ids.begin(), out.byzantine_ids.end());
  for (const auto& batch : report.results) {
    out.batch_verdicts.emplace_back(batch.verdict.attestation_valid,
                                    batch.verdict.aggregate_valid,
                                    batch.verdict.invalid_entries);
  }
  out.assembly_ops = report.assembly_ops;
  out.verify_ops = report.verify_ops;
  out.bisection = report.bisection;
  return run;
}

/// Per-user reference: each request verified on its own through the plain
/// Eq. (8)/(9) batch path, isolating with per-user bisection on reject.
struct Reference {
  std::size_t verified = 0;
  std::size_t stale = 0;
  /// (request index, block index) of every invalid signature entry.
  std::vector<std::pair<std::size_t, std::size_t>> invalid;
};

Reference reference_verdicts(const pairing::PairingGroup& g, const ibc::Sio& sio,
                             const ibc::IdentityKey& da,
                             const std::vector<AuditRequest>& requests,
                             std::uint64_t seed) {
  Reference ref;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    // The fleet's stale replays are exactly the behavior-map stale users on
    // round 0 (version 0 against an empty high-water mark).
    if (requests[r].version == 0) {
      ++ref.stale;
      continue;
    }
    const ibc::IdentityKey signer = sio.extract("user-" + std::to_string(r));
    std::vector<core::Bytes> messages;
    std::vector<ibc::DvSignature> sigs;
    std::vector<ibc::BatchEntry> entries;
    messages.reserve(requests[r].blocks.size());
    sigs.reserve(requests[r].blocks.size());
    entries.reserve(requests[r].blocks.size());
    for (const core::SignedBlock& sb : requests[r].blocks) {
      messages.push_back(core::block_message_bytes(sb.block));
      sigs.push_back(sb.sig.for_da());
      entries.push_back({signer.q_id, messages.back(), &sigs.back()});
    }
    if (ibc::dv_batch_verify(g, entries, da)) {
      ++ref.verified;
    } else {
      for (const std::size_t b : ibc::dv_batch_isolate(g, entries, da)) {
        ref.invalid.emplace_back(r, b);
      }
    }
  }
  (void)seed;
  return ref;
}

TEST(ServicePropertyTest, SharedBatchesMatchPerUserVerdictsEverywhere) {
  const pairing::PairingGroup& g = tiny_group();
  Xoshiro256 rng{20260808};
  const ibc::Sio sio{g, rng};
  const ibc::IdentityKey da = sio.extract("agency");
  const ibc::IdentityKey cs = sio.extract("cloud-server");

  const std::size_t iters = testsupport::property_iters(6);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = 1000 + iter * 37;

    // Baseline run: 1 shard, 1 thread.
    const EpochRun base = run_epoch(g, sio, da, cs, seed, 1, 1);

    // The per-user reference must agree on every verdict and every isolated
    // (request, block) pair — the shared batch changes cost, not outcome.
    const Reference ref = reference_verdicts(g, sio, da, base.requests, seed);
    EXPECT_EQ(base.outcome.verified, ref.verified) << "seed " << seed;
    EXPECT_EQ(base.outcome.stale, ref.stale) << "seed " << seed;
    std::vector<std::pair<std::size_t, std::size_t>> got;
    got.reserve(base.outcome.invalid.size());
    for (const auto& [id, req, block] : base.outcome.invalid) {
      EXPECT_EQ(id, "user-" + std::to_string(req)) << "seed " << seed;
      got.emplace_back(req, block);
    }
    std::sort(got.begin(), got.end());
    std::vector<std::pair<std::size_t, std::size_t>> want = ref.invalid;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "seed " << seed;

    // Every (shard count × thread count) combination must reproduce the
    // baseline outcome bit for bit, op-counter totals included.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        if (shards == 1 && threads == 1) continue;
        const EpochRun run = run_epoch(g, sio, da, cs, seed, shards, threads);
        EXPECT_EQ(run.outcome, base.outcome)
            << "seed " << seed << " shards " << shards << " threads " << threads;
      }
    }
  }
}

TEST(ServicePropertyTest, TwoPairingsPerCleanBatchAtEveryScale) {
  // With every user honest, verify-phase pairings are exactly 2 per batch
  // for any batch packing — the paper's any-size-batch headline.
  const pairing::PairingGroup& g = tiny_group();
  Xoshiro256 rng{77};
  const ibc::Sio sio{g, rng};
  const ibc::IdentityKey da = sio.extract("agency");
  const ibc::IdentityKey cs = sio.extract("cloud-server");

  for (const std::size_t batch_capacity :
       {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
    ServiceConfig config;
    config.epoch.batch_capacity = batch_capacity;
    config.threads = 2;
    AuditService svc{g, da, cs, config};
    FleetWorkload fleet{
        sio, FleetConfig{.users = 8, .active_users = 4, .blocks_per_request = 3, .seed = 5}};
    fleet.populate(svc);
    for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
    const EpochReport report = svc.run_epoch();
    const std::size_t expected_batches = (12 + batch_capacity - 1) / batch_capacity;
    EXPECT_EQ(report.batches, expected_batches);
    EXPECT_EQ(report.verified_requests, 4u);
    EXPECT_EQ(report.verify_ops.pairings, 2 * report.batches)
        << "batch capacity " << batch_capacity;
  }
}

}  // namespace
}  // namespace seccloud
