// Shared support for the property-test suites (ctest label `property`).
//
// Iteration counts obey the SECCLOUD_PROPERTY_ITERS environment variable so
// CI can run the same suites under sanitizers with a reduced budget.
#pragma once

#include <cstdlib>
#include <cstring>

namespace seccloud::testsupport {

/// Returns the suite's iteration count: SECCLOUD_PROPERTY_ITERS if set to a
/// positive integer, else `default_iters`.
inline std::size_t property_iters(std::size_t default_iters) {
  const char* env = std::getenv("SECCLOUD_PROPERTY_ITERS");
  if (env == nullptr || *env == '\0') return default_iters;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || parsed == 0) return default_iters;
  return static_cast<std::size_t>(parsed);
}

}  // namespace seccloud::testsupport
