// Failure-injection tests: deterministic mutation fuzzing over every wire
// codec (decoders must never crash and mutated crypto must never verify),
// plus auditor robustness against adversarially malformed responses.
#include <gtest/gtest.h>

#include "ibc/keys.h"
#include "property_support.h"
#include "seccloud/auditor.h"
#include "seccloud/client.h"
#include "seccloud/codec.h"
#include "seccloud/server.h"

namespace seccloud::core {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;

class FuzzTest : public ::testing::Test {
 protected:
  FuzzTest()
      : g(tiny_group()),
        rng(13013),
        sio(g, rng),
        user_key(sio.extract("user")),
        server_key(sio.extract("server")),
        da_key(sio.extract("da")),
        client(g, sio.params(), user_key, server_key.q_id, da_key.q_id) {
    for (std::uint64_t i = 0; i < 10; ++i) {
      blocks.push_back(client.sign_block(DataBlock::from_value(i, 5 * i), rng));
    }
    for (std::uint64_t i = 0; i < 5; ++i) {
      ComputeRequest req;
      req.kind = FuncKind::kSum;
      req.positions = {2 * i, 2 * i + 1};
      task.requests.push_back(std::move(req));
    }
  }

  BlockLookup lookup() const {
    return [this](std::uint64_t index) -> const SignedBlock* {
      return index < blocks.size() ? &blocks[index] : nullptr;
    };
  }

  /// Applies `n` random byte mutations (flip / truncate / extend).
  Bytes mutate(Bytes wire, int n, Xoshiro256& mutation_rng) {
    for (int i = 0; i < n && !wire.empty(); ++i) {
      switch (mutation_rng.next_u64() % 4) {
        case 0:  // bit flip
          wire[mutation_rng.next_u64() % wire.size()] ^=
              static_cast<std::uint8_t>(1u << (mutation_rng.next_u64() % 8));
          break;
        case 1:  // truncate
          wire.resize(mutation_rng.next_u64() % wire.size());
          break;
        case 2:  // append junk
          wire.push_back(static_cast<std::uint8_t>(mutation_rng.next_u64()));
          break;
        case 3:  // byte overwrite
          wire[mutation_rng.next_u64() % wire.size()] =
              static_cast<std::uint8_t>(mutation_rng.next_u64());
          break;
      }
    }
    return wire;
  }

  const pairing::PairingGroup& g;
  Xoshiro256 rng;
  ibc::Sio sio;
  ibc::IdentityKey user_key;
  ibc::IdentityKey server_key;
  ibc::IdentityKey da_key;
  UserClient client;
  std::vector<SignedBlock> blocks;
  ComputationTask task;
};

TEST_F(FuzzTest, MutatedSignedBlocksNeverVerify) {
  Xoshiro256 fuzz{1};
  const Bytes wire = encode_signed_block(g, blocks[0]);
  int decodable = 0;
  const int rounds = static_cast<int>(testsupport::property_iters(500));
  for (int round = 0; round < rounds; ++round) {
    const Bytes mutated = mutate(wire, 1 + static_cast<int>(fuzz.next_u64() % 4), fuzz);
    const auto decoded = decode_signed_block(g, mutated);  // must not crash
    if (!decoded) continue;
    // A mutant that differs in anything the DA checks (block, U, Σ') must
    // fail DA-side verification; a mutation confined to Σ (the CS copy) is
    // invisible to the DA by design.
    const bool da_view_unchanged = decoded->block == blocks[0].block &&
                                   decoded->sig.u == blocks[0].sig.u &&
                                   decoded->sig.sigma_da == blocks[0].sig.sigma_da;
    if (da_view_unchanged) continue;
    ++decodable;
    const auto report = verify_storage_audit(g, user_key.q_id, std::vector{*decoded}, da_key,
                                             VerifierRole::kDesignatedAgency,
                                             SignatureCheckMode::kIndividual);
    EXPECT_FALSE(report.accepted);
  }
  // Most mutations are rejected structurally; a few decode (payload bytes).
  EXPECT_LT(decodable, rounds / 2);
}

TEST_F(FuzzTest, MutatedMessagesNeverCrashDecoders) {
  Xoshiro256 fuzz{2};
  const TaskExecution exec = execute_task_honestly(task, lookup());
  const Commitment commitment =
      make_commitment(g, exec, server_key, da_key.q_id, user_key.q_id, rng);
  const Warrant warrant = client.make_warrant(da_key.id, 99, rng);
  const AuditChallenge challenge = make_challenge(task.requests.size(), 3, warrant, rng);
  const AuditResponse response =
      respond_to_audit(g, exec, challenge, lookup(), user_key.q_id, server_key, 1);

  const Bytes wires[] = {
      encode_task(g, task),
      encode_commitment(g, commitment),
      encode_warrant(g, warrant),
      encode_challenge(g, challenge),
      encode_response(g, response),
  };
  const int rounds = static_cast<int>(testsupport::property_iters(300));
  for (int round = 0; round < rounds; ++round) {
    for (const auto& wire : wires) {
      const Bytes mutated = mutate(wire, 1 + static_cast<int>(fuzz.next_u64() % 6), fuzz);
      // None of these may crash or corrupt memory; results are discarded.
      (void)decode_task(g, mutated);
      (void)decode_commitment(g, mutated);
      (void)decode_warrant(g, mutated);
      (void)decode_challenge(g, mutated);
      (void)decode_response(g, mutated);
      (void)decode_signed_block(g, mutated);
    }
  }
  SUCCEED();
}

TEST_F(FuzzTest, MutatedWarrantsNeverAuthorize) {
  Xoshiro256 fuzz{3};
  const Warrant warrant = client.make_warrant(da_key.id, 99, rng);
  const Bytes wire = encode_warrant(g, warrant);
  const int rounds = static_cast<int>(testsupport::property_iters(200));
  for (int round = 0; round < rounds; ++round) {
    const Bytes mutated = mutate(wire, 1 + static_cast<int>(fuzz.next_u64() % 3), fuzz);
    const auto decoded = decode_warrant(g, mutated);
    if (!decoded) continue;
    const bool unchanged = decoded->delegator_id == warrant.delegator_id &&
                           decoded->delegatee_id == warrant.delegatee_id &&
                           decoded->expiry_epoch == warrant.expiry_epoch &&
                           decoded->authorization == warrant.authorization;
    if (unchanged) continue;
    EXPECT_FALSE(warrant_valid(g, user_key.q_id, *decoded, server_key, 1));
  }
}

TEST_F(FuzzTest, AdversarialCountHeadersNeverCrashOrAccept) {
  // Handcrafted corpus: headers claiming enormous element counts followed by
  // (almost) no payload. Every decoder must reject them up front — and, per
  // the allocation regressions in codec_test.cpp, without reserving capacity
  // the input cannot back.
  const std::uint32_t counts[] = {1u << 16, 1u << 20, (1u << 20) + 1, 1u << 24,
                                  0xFFFFFFFFu};
  for (const auto count : counts) {
    Encoder header{g};
    header.put_u32(count);
    const Bytes count_only = std::move(header).take();
    EXPECT_FALSE(decode_task(g, count_only).has_value());
    EXPECT_FALSE(decode_commitment(g, count_only).has_value());
    EXPECT_FALSE(decode_challenge(g, count_only).has_value());

    Encoder response{g};
    response.put_u8(1);  // warrant accepted
    response.put_u32(count);
    EXPECT_FALSE(decode_response(g, std::move(response).take()).has_value());

    Encoder nested{g};   // huge inner count behind a valid-looking item
    nested.put_u8(1);
    nested.put_u32(1);
    nested.put_u64(0);
    nested.put_u64(0);
    nested.put_u32(count);
    EXPECT_FALSE(decode_response(g, std::move(nested).take()).has_value());
  }
}

// --- adversarially malformed responses (beyond byte mutation) ---------------

class MalformedResponseTest : public FuzzTest {
 protected:
  AuditReport audit_with(const AuditResponse& response) {
    const TaskExecution exec = execute_task_honestly(task, lookup());
    const Commitment commitment =
        make_commitment(g, exec, server_key, da_key.q_id, user_key.q_id, rng);
    return verify_computation_audit(g, user_key.q_id, server_key.q_id, task, commitment,
                                    last_challenge_, response, da_key,
                                    SignatureCheckMode::kBatch);
  }

  AuditResponse honest_response() {
    const TaskExecution exec = execute_task_honestly(task, lookup());
    const Warrant warrant = client.make_warrant(da_key.id, 99, rng);
    last_challenge_ = make_challenge(task.requests.size(), 3, warrant, rng);
    return respond_to_audit(g, exec, last_challenge_, lookup(), user_key.q_id, server_key, 1);
  }

  AuditChallenge last_challenge_;
};

TEST_F(MalformedResponseTest, DuplicateItemsRejected) {
  AuditResponse response = honest_response();
  response.items.push_back(response.items.front());  // answer one sample twice
  const auto report = audit_with(response);
  EXPECT_FALSE(report.accepted);
}

TEST_F(MalformedResponseTest, UnrequestedSampleRejected) {
  AuditResponse response = honest_response();
  // Replace a requested item with an unrequested index.
  std::uint64_t unrequested = 0;
  while (std::find(last_challenge_.sample_indices.begin(),
                   last_challenge_.sample_indices.end(),
                   unrequested) != last_challenge_.sample_indices.end()) {
    ++unrequested;
  }
  response.items.front().request_index = unrequested;
  EXPECT_FALSE(audit_with(response).accepted);
}

TEST_F(MalformedResponseTest, OutOfRangeIndexRejected) {
  AuditResponse response = honest_response();
  response.items.front().request_index = 10'000;
  EXPECT_FALSE(audit_with(response).accepted);
}

TEST_F(MalformedResponseTest, MissingInputsRejected) {
  AuditResponse response = honest_response();
  response.items.front().inputs.clear();
  const auto report = audit_with(response);
  EXPECT_FALSE(report.accepted);
  EXPECT_GT(report.signature_failures, 0u);
}

TEST_F(MalformedResponseTest, ExtraInputsRejected) {
  AuditResponse response = honest_response();
  response.items.front().inputs.push_back(blocks[9]);
  EXPECT_FALSE(audit_with(response).accepted);
}

TEST_F(MalformedResponseTest, EmptyResponseToNonEmptyChallengeRejected) {
  AuditResponse response = honest_response();
  response.items.clear();
  const auto report = audit_with(response);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.root_failures, last_challenge_.sample_indices.size());
}

}  // namespace
}  // namespace seccloud::core
