// Facade (SecCloudSystem) and CBS-baseline tests.
#include <gtest/gtest.h>

#include "baselines/cbs.h"
#include "seccloud/system.h"

namespace seccloud {
namespace {

using core::DataBlock;
using core::FuncKind;
using num::Xoshiro256;
using pairing::tiny_group;

class SystemTest : public ::testing::Test {
 protected:
  SystemTest() : sys(tiny_group(), 33), user(sys.register_user("alice")) {
    std::vector<DataBlock> blocks;
    for (std::uint64_t i = 0; i < 24; ++i) blocks.push_back(DataBlock::from_value(i, 3 * i));
    upload = user.sign_blocks(std::move(blocks));
    for (std::uint64_t i = 0; i < 6; ++i) {
      core::ComputeRequest req;
      req.kind = static_cast<FuncKind>(i % 6);
      for (std::uint64_t j = 0; j < 4; ++j) req.positions.push_back(4 * i + j);
      task.requests.push_back(std::move(req));
    }
  }
  core::SecCloudSystem sys;
  core::SystemUser user;
  std::vector<core::SignedBlock> upload;
  core::ComputationTask task;
};

TEST_F(SystemTest, FullFlowThroughFacade) {
  ASSERT_TRUE(sys.cloud_server().store(user.key().q_id, upload));
  EXPECT_EQ(sys.cloud_server().stored(), 24u);

  const auto executed = sys.cloud_server().compute(user.key().q_id, task);
  const auto report = sys.agency().audit(user, sys.cloud_server(), executed.task_id, task,
                                         executed.commitment, /*samples=*/4, /*epoch=*/1);
  EXPECT_TRUE(report.accepted);
}

TEST_F(SystemTest, ServerRejectsTamperedUpload) {
  auto tampered = upload;
  tampered[5].block.payload[0] ^= 1;
  EXPECT_FALSE(sys.cloud_server().store(user.key().q_id, tampered));
  EXPECT_EQ(sys.cloud_server().stored(), 0u);
}

TEST_F(SystemTest, ServerRejectsOtherUsersBlocksUnderWrongIdentity) {
  auto mallory = sys.register_user("mallory");
  // Mallory's blocks presented as Alice's: batch check fails.
  std::vector<DataBlock> blocks;
  blocks.push_back(DataBlock::from_value(0, 1));
  auto mallory_upload = mallory.sign_blocks(std::move(blocks));
  EXPECT_FALSE(sys.cloud_server().store(user.key().q_id, mallory_upload));
}

TEST_F(SystemTest, RespondUnknownTaskThrows) {
  core::AuditChallenge challenge;
  EXPECT_THROW(sys.cloud_server().respond(user.key().q_id, 999, challenge, 0),
               std::out_of_range);
}

TEST_F(SystemTest, RecommendedSampleSizeMatchesFigure4) {
  const analysis::CheatModel conservative{0.5, 0.5, 2.0, 0.0};
  EXPECT_EQ(sys.agency().recommended_sample_size(conservative), 33u);
  const analysis::CheatModel unguessable{0.5, 0.5, analysis::infinite_range(), 0.0};
  EXPECT_EQ(sys.agency().recommended_sample_size(unguessable), 15u);
}

TEST_F(SystemTest, MultipleUsersCoexist) {
  auto bob = sys.register_user("bob");
  std::vector<DataBlock> bob_blocks;
  for (std::uint64_t i = 100; i < 104; ++i) bob_blocks.push_back(DataBlock::from_value(i, i));
  const auto bob_upload = bob.sign_blocks(bob_blocks);
  ASSERT_TRUE(sys.cloud_server().store(user.key().q_id, upload));
  ASSERT_TRUE(sys.cloud_server().store(bob.key().q_id, bob_upload));
  EXPECT_EQ(sys.cloud_server().stored(), 28u);
}

// --- CBS baseline -------------------------------------------------------

std::uint64_t test_function(std::uint64_t x) { return x * x + 7 * x + 13; }

TEST(Cbs, HonestParticipantPassesAudit) {
  const auto participant = baselines::CbsParticipant::compute(test_function, 100);
  Xoshiro256 rng{5};
  const auto report =
      baselines::CbsSupervisor::audit(test_function, participant.root(), participant, 20, rng);
  EXPECT_TRUE(report.accepted);
  EXPECT_EQ(report.samples, 20u);
}

TEST(Cbs, LazyParticipantCaughtWithPaperSampleSize) {
  Xoshiro256 cheat_rng{6};
  // 50% honest, unguessable range (random u64 guesses): per Fig. 4 R→∞,
  // t = 15 drives survival below 1e-4.
  const auto participant = baselines::CbsParticipant::compute_cheating(
      test_function, 400, 0.5, cheat_rng);
  Xoshiro256 rng{7};
  int undetected = 0;
  for (int round = 0; round < 40; ++round) {
    const auto report = baselines::CbsSupervisor::audit(test_function, participant.root(),
                                                        participant, 15, rng);
    if (report.accepted) ++undetected;
  }
  EXPECT_EQ(undetected, 0);
}

TEST(Cbs, CommitmentBindsResults) {
  const auto honest = baselines::CbsParticipant::compute(test_function, 64);
  // Open a leaf, then audit against a DIFFERENT root: root checks must fail.
  const auto other = baselines::CbsParticipant::compute(
      [](std::uint64_t x) { return x + 1; }, 64);
  Xoshiro256 rng{8};
  const auto report =
      baselines::CbsSupervisor::audit(test_function, other.root(), honest, 10, rng);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.root_failures, 10u);
}

TEST(Cbs, PublicVerifiabilityIsThePrivacyGap) {
  // CBS proofs verify against the bare root — no secret key involved.
  // (This is precisely what lets a cheating grid participant resell results,
  // and what SecCloud's designated-verifier transform removes.)
  const auto participant = baselines::CbsParticipant::compute(test_function, 32);
  const auto proof = participant.open(9);
  const merkle::Digest leaf = [&] {
    std::vector<std::uint8_t> bytes(16);
    for (int i = 0; i < 8; ++i) {
      bytes[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(proof.claimed_result >> (i * 8));
      bytes[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(proof.input >> (i * 8));
    }
    return merkle::MerkleTree::leaf_hash(bytes);
  }();
  // A third party with no keys at all can authenticate the sold data:
  EXPECT_TRUE(merkle::MerkleTree::verify(participant.root(), leaf, proof.path));
}

TEST(Cbs, EmptyDomainThrows) {
  EXPECT_THROW(baselines::CbsParticipant::compute(test_function, 0), std::invalid_argument);
}

}  // namespace
}  // namespace seccloud
