// End-to-end tests on the production-size (SS512) group, plus figure-shape
// assertions: the pairing counts behind Figure 5 and Table II are checked
// structurally here so a regression cannot silently change the headline
// result. These tests are heavier (seconds, not milliseconds).
#include <gtest/gtest.h>

#include "baselines/wang_auditing.h"
#include "hash/hash_to.h"
#include "hash/hmac_drbg.h"
#include "seccloud/codec.h"
#include "seccloud/system.h"

namespace seccloud {
namespace {

using core::DataBlock;
using core::FuncKind;
using pairing::default_group;

TEST(EndToEnd512, FullProtocolOnProductionParameters) {
  core::SecCloudSystem sys{default_group(), 512001};
  auto alice = sys.register_user("alice@prod.example");

  std::vector<DataBlock> blocks;
  for (std::uint64_t i = 0; i < 8; ++i) blocks.push_back(DataBlock::from_value(i, 1000 + i));
  auto upload = alice.sign_blocks(std::move(blocks));
  ASSERT_TRUE(sys.cloud_server().store(alice.key().q_id, upload));

  core::ComputationTask task;
  for (std::uint64_t i = 0; i < 4; ++i) {
    core::ComputeRequest req;
    req.kind = static_cast<FuncKind>(i % 6);
    req.positions = {2 * i, 2 * i + 1};
    task.requests.push_back(std::move(req));
  }
  const auto executed = sys.cloud_server().compute(alice.key().q_id, task);
  const auto report = sys.agency().audit(alice, sys.cloud_server(), executed.task_id, task,
                                         executed.commitment, 4, 1);
  EXPECT_TRUE(report.accepted);
  EXPECT_EQ(report.signature_failures, 0u);
}

TEST(EndToEnd512, TamperDetectedOnProductionParameters) {
  core::SecCloudSystem sys{default_group(), 512002};
  auto bob = sys.register_user("bob@prod.example");
  std::vector<DataBlock> blocks{DataBlock::from_value(0, 7), DataBlock::from_value(1, 9)};
  auto upload = bob.sign_blocks(std::move(blocks));
  upload[1].block.payload[0] ^= 1;
  EXPECT_FALSE(sys.cloud_server().store(bob.key().q_id, upload));
}

TEST(EndToEnd512, CodecRoundTripOnProductionParameters) {
  const auto& g = default_group();
  core::SecCloudSystem sys{g, 512003};
  auto carol = sys.register_user("carol@prod.example");
  const auto upload = carol.sign_blocks({DataBlock::from_value(3, 11)});
  const auto wire = core::encode_signed_block(g, upload[0]);
  // SS512: 8 (index) + 4+8 (payload) + 129 (point) + 2*128 (GT) = 405 bytes.
  EXPECT_EQ(wire.size(), 405u);
  const auto back = core::decode_signed_block(g, wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, upload[0]);
}

TEST(EndToEnd512, HmacDrbgDrivesKeyGeneration) {
  // The crypto-grade RNG path: everything accepts any RandomSource.
  const auto& g = default_group();
  hash::HmacDrbg drbg{std::string_view{"deterministic key material"}};
  const ibc::Sio sio{g, drbg};
  const auto key = sio.extract("drbg-user");
  EXPECT_TRUE(g.in_g1(key.secret));
  // Same seed ⇒ same master key ⇒ same extraction.
  hash::HmacDrbg drbg2{std::string_view{"deterministic key material"}};
  const ibc::Sio sio2{g, drbg2};
  EXPECT_EQ(sio2.extract("drbg-user").secret, key.secret);
}

// --- figure-shape assertions ---------------------------------------------

TEST(FigureShapes, Figure5ConstantVsLinearPairings) {
  // Structural version of Figure 5 on the tiny group: our batch audit uses
  // 1 pairing regardless of user count; the Wang-style comparator uses 2
  // pairings per user.
  const auto& g = pairing::tiny_group();
  num::Xoshiro256 rng{5050};
  const ibc::Sio sio{g, rng};
  const auto csp = sio.extract("csp");

  baselines::WangScheme wang{g};
  for (const std::size_t users : {1u, 10u, 25u}) {
    ibc::BatchAccumulator batch{g};
    std::vector<std::string> messages;
    std::vector<ibc::IdentityKey> keys;
    for (std::size_t u = 0; u < users; ++u) {
      keys.push_back(sio.extract("u" + std::to_string(u)));
      messages.push_back("m" + std::to_string(u));
      batch.add(keys.back().q_id, hash::as_bytes(messages.back()),
                ibc::dv_transform(g, ibc::ibs_sign(g, keys.back(),
                                                   hash::as_bytes(messages.back()), rng),
                                  csp.q_id));
    }
    g.reset_counters();
    ASSERT_TRUE(batch.verify(csp));
    EXPECT_EQ(g.counters().pairings, 1u) << users;

    // Wang: one 2-pairing verification per user.
    std::uint64_t wang_pairings = 0;
    for (std::size_t u = 0; u < users; ++u) {
      const auto key = wang.keygen("f" + std::to_string(u), rng);
      std::vector<num::BigUint> file{num::BigUint{u}, num::BigUint{u + 1}};
      std::vector<pairing::Point> tags{wang.tag_block(key, 0, file[0]),
                                       wang.tag_block(key, 1, file[1])};
      const auto challenge = wang.make_challenge(2, 2, rng);
      const auto proof = wang.prove(challenge, file, tags);
      g.reset_counters();
      ASSERT_TRUE(wang.verify(wang.public_info(key), challenge, proof));
      wang_pairings += g.counters().pairings;
    }
    EXPECT_EQ(wang_pairings, 2 * users) << users;
  }
}

TEST(FigureShapes, Table2PairingCounts) {
  // SecCloud: τ pairings individual, 1 batch. (Table II's count model.)
  const auto& g = pairing::tiny_group();
  num::Xoshiro256 rng{6060};
  const ibc::Sio sio{g, rng};
  const auto csp = sio.extract("csp");
  const auto user = sio.extract("user");
  constexpr std::size_t kTau = 12;

  std::vector<std::string> messages;
  std::vector<ibc::DvSignature> sigs;
  for (std::size_t i = 0; i < kTau; ++i) {
    messages.push_back("t" + std::to_string(i));
    sigs.push_back(ibc::dv_transform(
        g, ibc::ibs_sign(g, user, hash::as_bytes(messages.back()), rng), csp.q_id));
  }
  g.reset_counters();
  for (std::size_t i = 0; i < kTau; ++i) {
    ASSERT_TRUE(ibc::dv_verify(g, user.q_id, hash::as_bytes(messages[i]), sigs[i], csp));
  }
  EXPECT_EQ(g.counters().pairings, kTau);

  ibc::BatchAccumulator batch{g};
  for (std::size_t i = 0; i < kTau; ++i) {
    batch.add(user.q_id, hash::as_bytes(messages[i]), sigs[i]);
  }
  g.reset_counters();
  ASSERT_TRUE(batch.verify(csp));
  EXPECT_EQ(g.counters().pairings, 1u);
}

}  // namespace
}  // namespace seccloud
