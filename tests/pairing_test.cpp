// Pairing-engine tests: parameter sanity, G1 group structure, hash-to-G1,
// and the algebraic laws of the modified Tate pairing (bilinearity,
// non-degeneracy, symmetry).
#include <gtest/gtest.h>

#include "bigint/primality.h"
#include "pairing/group.h"

namespace seccloud::pairing {
namespace {

using num::BigUint;
using num::Xoshiro256;

class PairingTest : public ::testing::Test {
 protected:
  const PairingGroup& g = tiny_group();
  Xoshiro256 rng{7};
};

TEST(PairingParams, PinnedDefaultSetValidates) {
  Xoshiro256 rng{1};
  EXPECT_TRUE(default_params().validate(rng));
}

TEST(PairingParams, PinnedTinySetValidates) {
  Xoshiro256 rng{2};
  EXPECT_TRUE(tiny_params().validate(rng));
}

TEST(PairingParams, GenerateProducesValidSet) {
  Xoshiro256 rng{99};
  const TypeAParams params = generate_type_a_params(96, 40, rng);
  Xoshiro256 check_rng{100};
  EXPECT_TRUE(params.validate(check_rng));
  EXPECT_EQ(params.p.bit_length(), 96u);
  EXPECT_EQ(params.q.bit_length(), 40u);
}

TEST_F(PairingTest, GeneratorHasOrderQ) {
  EXPECT_FALSE(g.generator().infinity);
  EXPECT_TRUE(g.curve().is_on_curve(g.generator()));
  EXPECT_TRUE(g.mul(g.order(), g.generator()).infinity);
  // Order is exactly q (q prime, generator not identity).
  EXPECT_FALSE(g.mul(BigUint{1}, g.generator()).infinity);
}

TEST_F(PairingTest, HashToG1LandsInSubgroup) {
  for (int i = 0; i < 10; ++i) {
    const Point pt = g.hash_to_g1("test", std::string{"id-"} + std::to_string(i));
    EXPECT_TRUE(g.in_g1(pt));
    EXPECT_FALSE(pt.infinity);
  }
}

TEST_F(PairingTest, HashToG1Deterministic) {
  const Point a = g.hash_to_g1("test", std::string_view{"alice"});
  const Point b = g.hash_to_g1("test", std::string_view{"alice"});
  const Point c = g.hash_to_g1("test", std::string_view{"bob"});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_F(PairingTest, PairingNonDegenerate) {
  const Gt e = g.pair(g.generator(), g.generator());
  EXPECT_FALSE(g.gt_is_one(e));
  // ê(P,P) has order q: ê(P,P)^q = 1.
  EXPECT_TRUE(g.gt_is_one(g.gt_pow(e, g.order())));
}

TEST_F(PairingTest, PairingBilinearInFirstArgument) {
  const Point p = g.generator();
  for (int i = 0; i < 5; ++i) {
    const BigUint a = g.random_scalar(rng);
    const Gt lhs = g.pair(g.mul(a, p), p);
    const Gt rhs = g.gt_pow(g.pair(p, p), a);
    EXPECT_EQ(lhs, rhs) << "a=" << a.to_hex();
  }
}

TEST_F(PairingTest, PairingBilinearInSecondArgument) {
  const Point p = g.generator();
  for (int i = 0; i < 5; ++i) {
    const BigUint b = g.random_scalar(rng);
    const Gt lhs = g.pair(p, g.mul(b, p));
    const Gt rhs = g.gt_pow(g.pair(p, p), b);
    EXPECT_EQ(lhs, rhs) << "b=" << b.to_hex();
  }
}

TEST_F(PairingTest, PairingFullBilinearity) {
  const Point p = g.generator();
  const Gt base = g.pair(p, p);
  for (int i = 0; i < 5; ++i) {
    const BigUint a = g.random_scalar(rng);
    const BigUint b = g.random_scalar(rng);
    const BigUint ab = (a * b) % g.order();
    EXPECT_EQ(g.pair(g.mul(a, p), g.mul(b, p)), g.gt_pow(base, ab));
  }
}

TEST_F(PairingTest, PairingSymmetricOnG1) {
  const Point p = g.generator();
  const Point q = g.hash_to_g1("test", std::string_view{"other"});
  EXPECT_EQ(g.pair(p, q), g.pair(q, p));
}

TEST_F(PairingTest, PairingAdditiveInFirstArgument) {
  const Point p = g.generator();
  const Point q = g.hash_to_g1("test", std::string_view{"other"});
  const Point r = g.hash_to_g1("test", std::string_view{"third"});
  EXPECT_EQ(g.pair(g.add(p, q), r), g.gt_mul(g.pair(p, r), g.pair(q, r)));
}

TEST_F(PairingTest, IdentityPairsToOne) {
  EXPECT_TRUE(g.gt_is_one(g.pair(Point::at_infinity(), g.generator())));
  EXPECT_TRUE(g.gt_is_one(g.pair(g.generator(), Point::at_infinity())));
}

TEST_F(PairingTest, PairProductMatchesIndividualProduct) {
  const Point p = g.generator();
  std::vector<std::pair<Point, Point>> pairs;
  Gt expected = g.gt_one();
  for (int i = 0; i < 4; ++i) {
    const Point a = g.mul(g.random_scalar(rng), p);
    const Point b = g.mul(g.random_scalar(rng), p);
    expected = g.gt_mul(expected, g.pair(a, b));
    pairs.emplace_back(a, b);
  }
  EXPECT_EQ(g.pair_product(pairs), expected);
}

TEST_F(PairingTest, GtInverseIsConjugate) {
  const Gt e = g.pair(g.generator(), g.generator());
  EXPECT_TRUE(g.gt_is_one(g.gt_mul(e, g.gt_inv(e))));
}

TEST_F(PairingTest, DefaultGroupPairingBilinear) {
  // One bilinearity check on the production-size (512-bit) group.
  const PairingGroup& big = default_group();
  Xoshiro256 big_rng{11};
  const BigUint a = big.random_scalar(big_rng);
  const BigUint b = big.random_scalar(big_rng);
  const BigUint ab = (a * b) % big.order();
  const Point p = big.generator();
  EXPECT_EQ(big.pair(big.mul(a, p), big.mul(b, p)),
            big.gt_pow(big.pair(p, p), ab));
}


// --- property sweep over freshly generated parameter sizes -----------------

class GeneratedParams : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(GeneratedParams, PairingLawsHoldOnFreshCurves) {
  const auto [p_bits, q_bits] = GetParam();
  Xoshiro256 rng{p_bits * 31 + q_bits};
  const TypeAParams params = generate_type_a_params(p_bits, q_bits, rng);
  const PairingGroup group{params};

  const Point p = group.generator();
  ASSERT_TRUE(group.in_g1(p));
  const Gt base = group.pair(p, p);
  EXPECT_FALSE(group.gt_is_one(base));
  EXPECT_TRUE(group.gt_is_one(group.gt_pow(base, group.order())));

  const num::BigUint a = group.random_scalar(rng);
  const num::BigUint b = group.random_scalar(rng);
  const num::BigUint ab = (a * b) % group.order();
  EXPECT_EQ(group.pair(group.mul(a, p), group.mul(b, p)), group.gt_pow(base, ab));

  const Point q = group.hash_to_g1("fresh", std::string_view{"x"});
  EXPECT_EQ(group.pair(p, q), group.pair(q, p));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratedParams,
                         ::testing::Values(std::make_pair(96u, 40u),
                                           std::make_pair(128u, 48u),
                                           std::make_pair(160u, 64u)));

}  // namespace
}  // namespace seccloud::pairing
