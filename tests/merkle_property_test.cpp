// Property tests for the Merkle commitment tree (ctest label `property`).
//
// For seeded random leaf sets of many sizes — including 1 and
// non-powers-of-two, the shapes where odd-node promotion bugs live — every
// leaf's audit path must verify against the root, and any perturbation
// (wrong leaf, flipped sibling byte, flipped side bit, dropped/appended
// node, wrong root) must fail. Proof serialization round-trips, and
// malformed proof bytes are rejected.
#include <gtest/gtest.h>

#include <vector>

#include "bigint/rng.h"
#include "merkle/tree.h"
#include "property_support.h"

namespace seccloud::merkle {
namespace {

using num::Xoshiro256;
using testsupport::property_iters;

std::vector<Digest> random_leaves(std::size_t count, Xoshiro256& rng) {
  std::vector<Digest> leaves(count);
  for (Digest& d : leaves) rng.fill(d);
  return leaves;
}

// Sizes chosen around every structural boundary: single leaf, perfect trees,
// one-off-perfect, and odd interior shapes.
const std::size_t kSizes[] = {1, 2,  3,  4,  5,  6,  7,  8,  9,  12, 15,
                              16, 17, 31, 32, 33, 64, 65, 100};

TEST(MerklePropertyTest, EveryLeafProofVerifiesAtEverySize) {
  const std::size_t rounds = property_iters(8);
  for (std::size_t round = 0; round < rounds; ++round) {
    Xoshiro256 rng{0x3E41E000 + round};
    for (const std::size_t size : kSizes) {
      const MerkleTree tree = MerkleTree::build(random_leaves(size, rng));
      EXPECT_EQ(tree.leaf_count(), size);
      for (std::size_t i = 0; i < size; ++i) {
        const Proof proof = tree.prove(i);
        EXPECT_TRUE(MerkleTree::verify(tree.root(), tree.leaf(i), proof))
            << "size " << size << " leaf " << i;
      }
    }
  }
}

TEST(MerklePropertyTest, AnyPerturbationFailsVerification) {
  const std::size_t rounds = property_iters(4);
  for (std::size_t round = 0; round < rounds; ++round) {
    Xoshiro256 rng{0x9E57 + round};
    for (const std::size_t size : kSizes) {
      const MerkleTree tree = MerkleTree::build(random_leaves(size, rng));
      const std::size_t index = rng.next_u64() % size;
      const Proof proof = tree.prove(index);
      const Digest leaf = tree.leaf(index);
      ASSERT_TRUE(MerkleTree::verify(tree.root(), leaf, proof));

      // Wrong leaf digest.
      Digest bad_leaf = leaf;
      bad_leaf[rng.next_u64() % bad_leaf.size()] ^= 0x01;
      EXPECT_FALSE(MerkleTree::verify(tree.root(), bad_leaf, proof));

      // Wrong root.
      Digest bad_root = tree.root();
      bad_root[rng.next_u64() % bad_root.size()] ^= 0x80;
      EXPECT_FALSE(MerkleTree::verify(bad_root, leaf, proof));

      if (!proof.empty()) {
        const std::size_t step = rng.next_u64() % proof.size();

        // Flipped sibling byte.
        Proof tampered = proof;
        tampered[step].sibling[rng.next_u64() % 32] ^= 0xFF;
        EXPECT_FALSE(MerkleTree::verify(tree.root(), leaf, tampered));

        // Flipped side bit: H(a ‖ b) != H(b ‖ a) except on the measure-zero
        // chance a == b, which random digests never hit.
        Proof flipped = proof;
        flipped[step].sibling_on_left = !flipped[step].sibling_on_left;
        EXPECT_FALSE(MerkleTree::verify(tree.root(), leaf, flipped));

        // Dropped node.
        Proof shortened = proof;
        shortened.erase(shortened.begin() + static_cast<std::ptrdiff_t>(step));
        EXPECT_FALSE(MerkleTree::verify(tree.root(), leaf, shortened));
      }

      // Appended node (also covers the size == 1, empty-proof case).
      Proof extended = proof;
      ProofNode extra;
      rng.fill(extra.sibling);
      extra.sibling_on_left = (rng.next_u64() & 1) != 0;
      extended.push_back(extra);
      EXPECT_FALSE(MerkleTree::verify(tree.root(), leaf, extended));
    }
  }
}

TEST(MerklePropertyTest, ProofSerializationRoundTripsAndRejectsMutations) {
  const std::size_t rounds = property_iters(8);
  for (std::size_t round = 0; round < rounds; ++round) {
    Xoshiro256 rng{0x5E41A + round};
    const std::size_t size = kSizes[rng.next_u64() % std::size(kSizes)];
    const MerkleTree tree = MerkleTree::build(random_leaves(size, rng));
    const Proof proof = tree.prove(rng.next_u64() % size);
    const auto wire = MerkleTree::serialize_proof(proof);
    const auto back = MerkleTree::deserialize_proof(wire);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, proof);
    // The format is a bare sequence of 33-byte nodes: a prefix cut at a node
    // boundary is itself a valid (shorter) proof; any other cut must fail.
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      const auto prefix = MerkleTree::deserialize_proof(
          std::span<const std::uint8_t>(wire.data(), cut));
      if (cut % 33 == 0) {
        ASSERT_TRUE(prefix.has_value());
        EXPECT_EQ(prefix->size(), cut / 33);
      } else {
        EXPECT_FALSE(prefix.has_value());
      }
    }
  }
}

}  // namespace
}  // namespace seccloud::merkle
