// Fleet-scale audit service: sharded registry semantics, bounded admission
// with backpressure, and the cross-user 2-pairing epoch pipeline (shared
// batches, stale-replay filtering, Byzantine isolation across user
// boundaries). The *Concurrent* suites are the TSan targets: registration,
// submission, and metric binding race across real threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "bigint/rng.h"
#include "ibc/keys.h"
#include "obs/metrics.h"
#include "pairing/group.h"
#include "seccloud/service/service.h"
#include "sim/fleet.h"

namespace seccloud {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;
using service::AuditRequest;
using service::AuditService;
using service::EpochReport;
using service::RegistryConfig;
using service::ServiceConfig;
using service::ShardedRegistry;
using service::UserHandle;
using sim::FleetBehavior;
using sim::FleetConfig;
using sim::FleetWorkload;

// --- registry ---------------------------------------------------------------

TEST(ShardedRegistryTest, RegisterFindAndIdempotence) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
    ShardedRegistry reg{{.shards = shards, .records_per_chunk = 16}};
    std::vector<UserHandle> handles;
    for (std::size_t i = 0; i < 1000; ++i) {
      handles.push_back(reg.register_user("user-" + std::to_string(i)));
    }
    EXPECT_EQ(reg.size(), 1000u);
    for (std::size_t i = 0; i < 1000; ++i) {
      const std::string id = "user-" + std::to_string(i);
      EXPECT_EQ(reg.register_user(id), handles[i]) << "re-register must be idempotent";
      ASSERT_TRUE(reg.find(id).has_value());
      EXPECT_EQ(*reg.find(id), handles[i]);
      EXPECT_EQ(reg.view(handles[i]).id, id);
    }
    EXPECT_EQ(reg.size(), 1000u);
    EXPECT_FALSE(reg.find("never-registered").has_value());
    EXPECT_FALSE(reg.find("").has_value());
  }
}

TEST(ShardedRegistryTest, HandlesStayValidAcrossGrowth) {
  // Small chunks force many arena chunk allocations and table rehashes;
  // handles issued early must still resolve to the same record.
  ShardedRegistry reg{{.shards = 2, .records_per_chunk = 16, .id_arena_chunk_bytes = 256}};
  const UserHandle first = reg.register_user("first-user");
  for (std::size_t i = 0; i < 5000; ++i) reg.register_user("u" + std::to_string(i));
  EXPECT_EQ(reg.view(first).id, "first-user");
  EXPECT_EQ(*reg.find("first-user"), first);
}

TEST(ShardedRegistryTest, KeyBindingIsWriteOnceAndStable) {
  ShardedRegistry reg{{.shards = 4, .key_width = 8}};
  const UserHandle u = reg.register_user("alice");
  EXPECT_TRUE(reg.key(u).empty());
  EXPECT_FALSE(reg.view(u).has_key);

  const std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(reg.bind_key(u, blob));
  EXPECT_FALSE(reg.bind_key(u, blob)) << "write-once";
  const auto key = reg.key(u);
  ASSERT_EQ(key.size(), 8u);
  EXPECT_TRUE(std::equal(key.begin(), key.end(), blob.begin()));
  EXPECT_TRUE(reg.view(u).has_key);

  const std::vector<std::uint8_t> short_blob = {1, 2};
  const UserHandle v = reg.register_user("bob");
  EXPECT_THROW(reg.bind_key(v, short_blob), std::invalid_argument);

  ShardedRegistry keyless{{.shards = 1}};  // key_width = 0 disables the arena
  const UserHandle w = keyless.register_user("carol");
  EXPECT_THROW(keyless.bind_key(w, blob), std::invalid_argument);
}

TEST(ShardedRegistryTest, AuditHighWaterMarkFiltersStaleVersions) {
  ShardedRegistry reg{{.shards = 1}};
  const UserHandle u = reg.register_user("alice");
  EXPECT_EQ(reg.audited_version(u), 0u);
  EXPECT_TRUE(reg.record_audit(u, 3));
  EXPECT_EQ(reg.audited_version(u), 3u);
  EXPECT_FALSE(reg.record_audit(u, 3)) << "same version is stale";
  EXPECT_FALSE(reg.record_audit(u, 1)) << "older version is stale";
  EXPECT_TRUE(reg.record_audit(u, 7));
  EXPECT_EQ(reg.audited_version(u), 7u);
  EXPECT_EQ(reg.view(u).audits_served, 4u) << "every record_audit counts";
}

TEST(ShardedRegistryTest, RejectsMalformedInputs) {
  ShardedRegistry reg{{.shards = 2, .id_arena_chunk_bytes = 256}};
  EXPECT_THROW(reg.register_user(""), std::invalid_argument);
  EXPECT_THROW(reg.register_user(std::string(300, 'x')), std::length_error);
  EXPECT_THROW(reg.view(service::kInvalidUser), std::out_of_range);
  const UserHandle u = reg.register_user("ok");
  EXPECT_THROW(reg.view(u + 1), std::out_of_range);
}

TEST(ShardedRegistryTest, StatsAccountForArenas) {
  ShardedRegistry reg{{.shards = 8, .key_width = 16}};
  for (std::size_t i = 0; i < 500; ++i) reg.register_user("user-" + std::to_string(i));
  const auto stats = reg.stats();
  EXPECT_EQ(stats.users, 500u);
  EXPECT_EQ(stats.keyed_users, 0u);
  EXPECT_EQ(stats.shards, 8u);
  EXPECT_GT(stats.record_bytes, 0u);
  EXPECT_GT(stats.id_bytes, 0u);
  EXPECT_GT(stats.table_bytes, 0u);
  EXPECT_EQ(stats.total_bytes(),
            stats.record_bytes + stats.id_bytes + stats.key_bytes + stats.table_bytes);
}

TEST(ShardedRegistryConcurrentTest, ParallelRegisterAndFind) {
  ShardedRegistry reg{{.shards = 8, .records_per_chunk = 32}};
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Half the ids collide across threads: idempotence under contention.
        const std::string id = "u" + std::to_string(i % 2 == 0 ? i : t * kPerThread + i);
        const UserHandle h = reg.register_user(id);
        ASSERT_EQ(reg.view(h).id, id);
        ASSERT_EQ(*reg.find(id), h);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every id registered exactly once.
  EXPECT_EQ(reg.size(), reg.stats().users);
  for (std::size_t i = 0; i < kPerThread; i += 2) {
    EXPECT_TRUE(reg.find("u" + std::to_string(i)).has_value());
  }
}

// --- admission queue --------------------------------------------------------

TEST(AdmissionQueueTest, BoundedWithRetryAfterBackpressure) {
  service::AdmissionQueue queue{{.queue_capacity = 4, .retry_after_epochs = 3}};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto admission = queue.submit({});
    EXPECT_TRUE(admission.accepted);
    EXPECT_EQ(admission.epoch, 0u);
    EXPECT_EQ(admission.retry_after_epochs, 0u);
  }
  const auto rejected = queue.submit({});
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.retry_after_epochs, 3u);
  EXPECT_EQ(queue.depth(), 4u);

  const auto drained = queue.drain();
  EXPECT_EQ(drained.size(), 4u);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.epoch(), 1u);
  EXPECT_TRUE(queue.submit({}).accepted) << "capacity frees after drain";
}

TEST(AdmissionQueueTest, DrainPreservesAdmissionOrder) {
  service::AdmissionQueue queue{{.queue_capacity = 16}};
  for (std::uint64_t v = 1; v <= 10; ++v) {
    AuditRequest r;
    r.version = v;
    ASSERT_TRUE(queue.submit(std::move(r)).accepted);
  }
  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 10u);
  for (std::uint64_t v = 1; v <= 10; ++v) EXPECT_EQ(drained[v - 1].version, v);
}

TEST(AdmissionQueueConcurrentTest, SubmitRacesBindMetricsAndDrain) {
  service::AdmissionQueue queue{{.queue_capacity = 64}};
  obs::MetricsRegistry metrics;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> accepted{0};
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < 200; ++i) {
        if (queue.submit({}).accepted) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Bind metrics while submissions are in flight (the late-binding race the
  // TSan job guards), and drain concurrently to exercise the epoch boundary.
  queue.bind_metrics(metrics, "svc.queue");
  std::size_t drained = 0;
  for (std::size_t i = 0; i < 50; ++i) drained += queue.drain().size();
  for (auto& t : threads) t.join();
  drained += queue.drain().size();
  EXPECT_EQ(drained, accepted.load());
  EXPECT_EQ(queue.epoch(), 51u);
}

// --- epoch pipeline ---------------------------------------------------------

struct ServiceFixture : ::testing::Test {
  const pairing::PairingGroup& g = tiny_group();
  Xoshiro256 rng{4242};
  ibc::Sio sio{g, rng};
  ibc::IdentityKey da = sio.extract("agency");
  ibc::IdentityKey cs = sio.extract("cloud-server");

  AuditService make_service(std::size_t threads = 1, std::size_t batch_capacity = 8) {
    ServiceConfig config;
    config.registry.shards = 4;
    config.epoch.queue_capacity = 256;
    config.epoch.batch_capacity = batch_capacity;
    config.threads = threads;
    return AuditService{g, da, cs, config};
  }
};

TEST_F(ServiceFixture, HonestEpochVerifiesAtTwoPairingsPerBatch) {
  AuditService svc = make_service();
  FleetWorkload fleet{sio, {.users = 64, .active_users = 6, .blocks_per_request = 4, .seed = 7}};
  fleet.populate(svc);
  for (auto& r : fleet.make_requests(svc)) ASSERT_TRUE(svc.submit(std::move(r)).accepted);

  const EpochReport report = svc.run_epoch();
  EXPECT_EQ(report.requests, 6u);
  EXPECT_EQ(report.entries, 24u);
  EXPECT_EQ(report.batches, 3u);  // 24 entries / capacity 8
  EXPECT_EQ(report.verified_requests, 6u);
  EXPECT_EQ(report.failed_requests, 0u);
  EXPECT_TRUE(report.invalid_entries.empty());
  EXPECT_TRUE(report.byzantine_users.empty());
  for (const auto& batch : report.results) {
    EXPECT_TRUE(batch.verdict.accepted);
    EXPECT_TRUE(batch.verdict.attestation_valid);
    EXPECT_TRUE(batch.verdict.aggregate_valid);
  }
  // The headline number: any batch size, exactly 2 pairings per batch in the
  // verify window (1 attestation + 1 mixed-signer aggregate).
  EXPECT_EQ(report.verify_ops.pairings, 2 * report.batches);
  EXPECT_EQ(report.bisection.oracle_calls, 0u);
  // Audits recorded against the freshness high-water mark.
  EXPECT_EQ(svc.registry().audited_version(fleet.handle(0)), 1u);
}

TEST_F(ServiceFixture, StaleReplayIsFilteredAtZeroPairingCost) {
  AuditService svc = make_service();
  FleetWorkload fleet{sio, {.users = 16, .active_users = 3, .blocks_per_request = 2, .seed = 11}};
  fleet.populate(svc);
  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  ASSERT_EQ(svc.run_epoch().verified_requests, 3u);

  // Round 2: user 1 replays its already-audited version.
  auto behaviors = [](std::size_t i) {
    return i == 1 ? FleetBehavior::kStaleReplay : FleetBehavior::kHonest;
  };
  for (auto& r : fleet.make_requests(svc, behaviors)) svc.submit(std::move(r));
  const EpochReport report = svc.run_epoch();
  EXPECT_EQ(report.stale_rejected, 1u);
  EXPECT_EQ(report.verified_requests, 2u);
  EXPECT_EQ(report.failed_requests, 1u);
  EXPECT_EQ(report.entries, 4u) << "stale request never reaches a batch";
  EXPECT_EQ(report.verify_ops.pairings, 2 * report.batches)
      << "the replay cost zero extra pairings";
  EXPECT_TRUE(report.byzantine_users.empty())
      << "a stale replay is filtered, not isolated";
}

TEST_F(ServiceFixture, ByzantineSignerIsolatedWithoutPoisoningTheBatch) {
  AuditService svc = make_service(/*threads=*/1, /*batch_capacity=*/16);
  FleetWorkload fleet{sio, {.users = 32, .active_users = 5, .blocks_per_request = 3, .seed = 13}};
  fleet.populate(svc);
  auto behaviors = [](std::size_t i) {
    return i == 2 ? FleetBehavior::kBadSignature : FleetBehavior::kHonest;
  };
  for (auto& r : fleet.make_requests(svc, behaviors)) svc.submit(std::move(r));

  const EpochReport report = svc.run_epoch();
  EXPECT_EQ(report.entries, 15u);
  EXPECT_EQ(report.batches, 1u);
  ASSERT_EQ(report.invalid_entries.size(), 1u);
  EXPECT_EQ(report.invalid_entries[0].user, fleet.handle(2));
  EXPECT_EQ(report.invalid_entries[0].block_index, 0u);
  ASSERT_EQ(report.byzantine_users.size(), 1u);
  EXPECT_EQ(report.byzantine_users[0], fleet.handle(2));
  EXPECT_EQ(report.failed_requests, 1u);
  EXPECT_EQ(report.verified_requests, 4u) << "honest users still accepted";
  // 2 pairings for the batch + 1+O(k·log n) bisection oracle calls.
  EXPECT_GT(report.bisection.oracle_calls, 0u);
  EXPECT_EQ(report.verify_ops.pairings,
            2 * report.batches + report.bisection.oracle_calls);
  // The Byzantine user's version did NOT advance: a later honest submission
  // at the same version must succeed.
  EXPECT_EQ(svc.registry().audited_version(fleet.handle(2)), 0u);
}

TEST_F(ServiceFixture, UnkeyedUsersAreRejectedBeforeBatching) {
  AuditService svc = make_service();
  const UserHandle ghost = svc.register_user("ghost");  // record, no key
  AuditRequest r;
  r.user = ghost;
  r.version = 1;
  r.blocks.resize(1);
  svc.submit(std::move(r));
  const EpochReport report = svc.run_epoch();
  EXPECT_EQ(report.unkeyed_rejected, 1u);
  EXPECT_EQ(report.entries, 0u);
  EXPECT_EQ(report.verify_ops.pairings, 0u);
}

TEST_F(ServiceFixture, MetricsFlowThroughTheRegistry) {
  obs::MetricsRegistry metrics;  // must outlive the service's pool threads
  AuditService svc = make_service();
  svc.bind_metrics(metrics, "svc");
  FleetWorkload fleet{sio, {.users = 8, .active_users = 2, .blocks_per_request = 2, .seed = 3}};
  fleet.populate(svc);
  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  svc.run_epoch();

  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("svc.queue.admitted"), 2u);
  EXPECT_EQ(snap.counters.at("svc.requests.verified"), 2u);
  EXPECT_EQ(snap.counters.at("svc.epochs"), 1u);
  EXPECT_EQ(snap.histograms.at("svc.epoch_ms").count, 1u);
  EXPECT_EQ(snap.gauges.at("svc.queue.queue_depth").max, 2);
  // The backpressure hint is a surfaced gauge, not a buried config knob.
  EXPECT_EQ(snap.gauges.at("svc.queue.retry_after_epochs").value,
            static_cast<std::int64_t>(svc.queue().config().retry_after_epochs));
}

TEST_F(ServiceFixture, AdmissionTotalsAndRetryHintSurviveBackpressure) {
  obs::MetricsRegistry metrics;
  ServiceConfig config;
  config.registry.shards = 2;
  config.epoch.queue_capacity = 4;
  config.epoch.retry_after_epochs = 3;
  config.threads = 1;
  AuditService svc{g, da, cs, config};
  svc.bind_metrics(metrics, "svc");
  FleetWorkload fleet{sio, {.users = 8, .active_users = 8, .blocks_per_request = 1, .seed = 23}};
  fleet.populate(svc);
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (auto& r : fleet.make_requests(svc)) {
    const auto ticket = svc.submit(std::move(r));
    if (ticket.accepted) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_EQ(ticket.retry_after_epochs, 3u) << "hint attached to the reject";
    }
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, 4u);
  EXPECT_EQ(svc.queue().admitted_total(), 4u);
  EXPECT_EQ(svc.queue().rejected_total(), 4u);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.gauges.at("svc.queue.retry_after_epochs").value, 3);

  // The epoch report republishes the hint in its JSON summary.
  const EpochReport report = svc.run_epoch();
  EXPECT_EQ(report.retry_after_epochs, 3u);
  EXPECT_NE(report.to_json().find("\"retry_after_epochs\":3"), std::string::npos)
      << report.to_json();
}

TEST_F(ServiceFixture, ConcurrentSubmittersWithEpochDriver) {
  // The registry must outlive the service: pool workers can still be
  // recording task latency into the bound histograms for a moment after
  // run_epoch() returns, so destroying the registry first is use-after-free
  // (the TSan job catches exactly this ordering).
  obs::MetricsRegistry metrics;
  AuditService svc = make_service(/*threads=*/2);
  FleetWorkload fleet{sio, {.users = 16, .active_users = 4, .blocks_per_request = 1, .seed = 17}};
  fleet.populate(svc);
  // Pre-build three rounds of traffic, then submit from racing threads while
  // metrics bind late — verification itself stays on the driver thread.
  std::vector<service::AuditRequest> traffic;
  for (int round = 0; round < 3; ++round) {
    for (auto& r : fleet.make_requests(svc)) traffic.push_back(std::move(r));
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= traffic.size()) return;
        svc.submit(std::move(traffic[i]));
      }
    });
  }
  svc.bind_metrics(metrics, "svc");
  for (auto& t : submitters) t.join();

  std::size_t verified = 0;
  // Out-of-order versions across rounds may reject some as stale; every
  // entry must still be either verified or filtered — never lost.
  std::size_t outcomes = 0;
  for (int epoch = 0; epoch < 2; ++epoch) {
    const EpochReport report = svc.run_epoch();
    verified += report.verified_requests;
    outcomes += report.verified_requests + report.failed_requests;
  }
  EXPECT_EQ(outcomes, traffic.size());
  EXPECT_GE(verified, 4u) << "at least the newest version per user verifies";
}

}  // namespace
}  // namespace seccloud
