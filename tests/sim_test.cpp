// Simulation-substrate tests: server cheating behaviours, the distributed
// cloud (task splitting, Byzantine epochs), Monte-Carlo detection vs the
// closed forms, traffic metering, and the privacy-resale market.
#include <gtest/gtest.h>

#include "sim/cloud.h"
#include "sim/montecarlo.h"
#include "sim/resale.h"
#include "util/thread_pool.h"

namespace seccloud::sim {
namespace {

using core::FuncKind;
using core::SignatureCheckMode;
using num::Xoshiro256;
using pairing::tiny_group;

core::ComputationTask make_task(std::size_t requests, std::size_t positions_each,
                                std::size_t universe) {
  core::ComputationTask task;
  for (std::size_t i = 0; i < requests; ++i) {
    core::ComputeRequest req;
    req.kind = static_cast<FuncKind>(i % 6);
    for (std::size_t j = 0; j < positions_each; ++j) {
      req.positions.push_back((i * positions_each + j) % universe);
    }
    task.requests.push_back(std::move(req));
  }
  return task;
}

std::vector<core::DataBlock> make_blocks(std::size_t n) {
  std::vector<core::DataBlock> blocks;
  for (std::uint64_t i = 0; i < n; ++i) blocks.push_back(core::DataBlock::from_value(i, 7 * i + 1));
  return blocks;
}

class CloudSimTest : public ::testing::Test {
 protected:
  CloudSimTest() : sim(tiny_group(), CloudConfig{4, 2, 77}) {
    user = sim.register_user("alice@sim");
    sim.store_data(user, make_blocks(64));
  }
  CloudSim sim;
  std::size_t user = 0;
};

TEST_F(CloudSimTest, HonestCloudStoresEverything) {
  for (std::size_t s = 0; s < sim.num_servers(); ++s) {
    EXPECT_EQ(sim.server(s).stored_count(sim.user_key(user).id), 64u);
  }
}

TEST_F(CloudSimTest, IngestScreeningAcceptsAuthenticData) {
  const auto report =
      sim.server(0).screen_ingest(sim.user_key(user).q_id, sim.user_key(user).id);
  EXPECT_TRUE(report.accepted);
}

TEST_F(CloudSimTest, TaskSplitsAcrossAllServers) {
  const auto task = make_task(16, 4, 64);
  const auto distributed = sim.submit_task(user, task);
  EXPECT_EQ(distributed.parts.size(), 4u);
  std::size_t total = 0;
  for (const auto& part : distributed.parts) total += part.sub_task.requests.size();
  EXPECT_EQ(total, 16u);
}

TEST_F(CloudSimTest, HonestDistributedAuditAccepts) {
  const auto task = make_task(16, 4, 64);
  const auto distributed = sim.submit_task(user, task);
  const auto report = sim.audit_task(user, distributed, 4, SignatureCheckMode::kBatch);
  EXPECT_TRUE(report.accepted);
  EXPECT_EQ(report.parts_rejected, 0u);
  EXPECT_EQ(report.per_part.size(), 4u);
}

TEST_F(CloudSimTest, ByzantineCorruptionRespectsLimit) {
  const ServerBehavior cheat{.honest_compute_fraction = 0.0};
  const auto corrupted = sim.corrupt_random_servers(cheat, 10);
  EXPECT_LE(corrupted.size(), 2u);  // b = 2
}

TEST_F(CloudSimTest, CorruptedServersCaughtWithFullSampling) {
  ServerBehavior cheat;
  cheat.honest_compute_fraction = 0.0;  // guesses everything
  const auto corrupted = sim.corrupt_random_servers(cheat, 2);
  ASSERT_EQ(corrupted.size(), 2u);

  const auto task = make_task(16, 4, 64);
  const auto distributed = sim.submit_task(user, task);
  // Full sampling of each part.
  const auto report = sim.audit_task(user, distributed, 16, SignatureCheckMode::kIndividual);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.parts_rejected, corrupted.size());

  sim.restore_all_servers();
  const auto clean = sim.submit_task(user, task);
  EXPECT_TRUE(sim.audit_task(user, clean, 16, SignatureCheckMode::kBatch).accepted);
}

TEST_F(CloudSimTest, GroundTruthFlagsMatchAuditOutcome) {
  ServerBehavior cheat;
  cheat.honest_position_fraction = 0.0;
  sim.corrupt_random_servers(cheat, 1);
  const auto task = make_task(16, 4, 64);
  const auto distributed = sim.submit_task(user, task);
  const auto report = sim.audit_task(user, distributed, 16, SignatureCheckMode::kIndividual);
  for (std::size_t i = 0; i < distributed.parts.size(); ++i) {
    EXPECT_EQ(report.per_part[i].accepted, distributed.parts[i].server_was_honest)
        << "part " << i;
  }
}

TEST_F(CloudSimTest, EpochAdvances) {
  EXPECT_EQ(sim.epoch(), 0u);
  sim.advance_epoch();
  sim.advance_epoch();
  EXPECT_EQ(sim.epoch(), 2u);
}

TEST_F(CloudSimTest, TrafficIsMetered) {
  const auto task = make_task(8, 4, 64);
  const auto distributed = sim.submit_task(user, task);
  const auto before = sim.agency().traffic().total();
  (void)sim.audit_task(user, distributed, 4, SignatureCheckMode::kBatch);
  EXPECT_GT(sim.agency().traffic().total(), before);
  EXPECT_GT(sim.server(0).traffic().total(), 0u);
}

TEST_F(CloudSimTest, StorageAuditThroughAgency) {
  const auto report = sim.agency().audit_storage(
      sim.server(1), sim.user_key(user).q_id, sim.user_key(user).id, 64, 16,
      SignatureCheckMode::kBatch, sim.rng());
  EXPECT_TRUE(report.accepted);
}

TEST_F(CloudSimTest, DeletingServerCaughtByStorageAudit) {
  ServerBehavior deleter;
  deleter.retain_fraction = 0.0;  // drops everything it receives from now on
  sim.server(2).set_behavior(deleter);
  // Re-ingest: the server discards, then the audit samples garbage.
  sim.server(2).handle_store(sim.user_key(user).id, {});  // no-op, keep existing
  // Wipe by storing into a fresh user whose data it deletes:
  const auto victim = sim.register_user("bob@sim");
  sim.store_data(victim, make_blocks(32));
  EXPECT_EQ(sim.server(2).stored_count(sim.user_key(victim).id), 0u);
  const auto report = sim.agency().audit_storage(
      sim.server(2), sim.user_key(victim).q_id, sim.user_key(victim).id, 32, 8,
      SignatureCheckMode::kIndividual, sim.rng());
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.signature_failures, 8u);
}

// --- Individual server behaviours (crypto-backed) ---------------------------

class ServerBehaviorTest : public ::testing::Test {
 protected:
  ServerBehaviorTest() : sim(tiny_group(), CloudConfig{1, 1, 123}) {
    user = sim.register_user("carol@sim");
    sim.store_data(user, make_blocks(48));
  }

  double detection_rate(const ServerBehavior& behavior, std::size_t samples, int rounds) {
    sim.server(0).set_behavior(behavior);
    int detected = 0;
    const auto task = make_task(12, 4, 48);
    for (int i = 0; i < rounds; ++i) {
      const auto distributed = sim.submit_task(user, task);
      const auto report =
          sim.audit_task(user, distributed, samples, SignatureCheckMode::kIndividual);
      if (!report.accepted) ++detected;
    }
    return static_cast<double>(detected) / rounds;
  }

  CloudSim sim;
  std::size_t user = 0;
};

TEST_F(ServerBehaviorTest, HonestNeverDetected) {
  EXPECT_DOUBLE_EQ(detection_rate(ServerBehavior::honest(), 12, 10), 0.0);
}

TEST_F(ServerBehaviorTest, FullGuesserAlwaysDetectedAtFullSampling) {
  ServerBehavior cheat;
  cheat.honest_compute_fraction = 0.0;
  EXPECT_DOUBLE_EQ(detection_rate(cheat, 12, 10), 1.0);
}

TEST_F(ServerBehaviorTest, PositionCheatAlwaysDetectedAtFullSampling) {
  ServerBehavior cheat;
  cheat.honest_position_fraction = 0.0;
  EXPECT_DOUBLE_EQ(detection_rate(cheat, 12, 10), 1.0);
}

TEST_F(ServerBehaviorTest, PartialCheatDetectionGrowsWithSampling) {
  ServerBehavior cheat;
  cheat.honest_compute_fraction = 0.7;
  const double few = detection_rate(cheat, 2, 40);
  const double many = detection_rate(cheat, 12, 40);
  EXPECT_LT(few, many);
  EXPECT_GT(many, 0.9);
}

TEST_F(ServerBehaviorTest, CorruptingServerDetectedBySignatures) {
  ServerBehavior cheat;
  cheat.corrupt_fraction = 1.0;
  sim.server(0).set_behavior(cheat);
  const auto victim = sim.register_user("dave@sim");
  sim.store_data(victim, make_blocks(16));
  const auto report = sim.agency().audit_storage(
      sim.server(0), sim.user_key(victim).q_id, sim.user_key(victim).id, 16, 16,
      SignatureCheckMode::kIndividual, sim.rng());
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.signature_failures, 16u);
}

// --- Monte-Carlo vs closed form ---------------------------------------------

class MonteCarloTest : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(MonteCarloTest, EmpiricalMatchesJointClosedForm) {
  const auto [csc, ssc, range] = GetParam();
  DetectionParams params;
  params.cheat = {csc, ssc, range, 0.0};
  params.task_size = 400;
  params.sample_size = 8;

  Xoshiro256 rng{std::hash<double>{}(csc + 3 * ssc + 7 * range)};
  const auto stats = run_detection_model(params, 40000, rng);
  const double expected = analysis::pr_cheating_success_joint(params.cheat, 8);
  EXPECT_NEAR(stats.empirical_success(), expected, 0.015)
      << "csc=" << csc << " ssc=" << ssc << " R=" << range;
  // And stays below the paper's union bound (Eq. 14).
  EXPECT_LE(stats.empirical_success(),
            analysis::pr_cheating_success(params.cheat, 8) + 0.015);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonteCarloTest,
    ::testing::Values(std::make_tuple(0.5, 0.5, 2.0), std::make_tuple(0.8, 1.0, 2.0),
                      std::make_tuple(1.0, 0.7, 2.0), std::make_tuple(0.9, 0.9, 1000.0),
                      std::make_tuple(0.3, 0.8, 4.0), std::make_tuple(0.95, 0.95, 2.0)));

TEST(MonteCarlo, PaperSampleSizeDrivesSuccessBelowEpsilon) {
  // With the Figure-4 sample size t = 33 (CSC = SSC = 0.5, R = 2), cheating
  // should essentially never survive in 20k trials.
  DetectionParams params;
  params.cheat = {0.5, 0.5, 2.0, 0.0};
  params.task_size = 200;
  params.sample_size = 33;
  Xoshiro256 rng{4242};
  const auto stats = run_detection_model(params, 20000, rng);
  EXPECT_EQ(stats.undetected, 0u);
}

// Seed-reproducibility regression: the seeded Monte-Carlo is a contract —
// (params, trials, seed) fully determines the counts, for ANY thread count,
// and the seed genuinely drives the trials.
TEST(MonteCarlo, SeededModelReproducibleAcrossThreadCountsAndSeedsDiffer) {
  DetectionParams params;
  params.cheat = {0.5, 0.5, 2.0, 0.0};
  params.task_size = 64;
  params.sample_size = 4;
  constexpr std::size_t kTrials = 1500;
  // Trial i draws from Xoshiro256(seed + i), so adjacent base seeds share
  // almost all their per-trial streams — space the seeds beyond kTrials.
  const std::uint64_t seeds[] = {91, 700091, 42000091};

  std::vector<std::size_t> undetected;
  for (const std::uint64_t seed : seeds) {
    const auto serial = run_detection_model_seeded(params, kTrials, seed, nullptr);
    ASSERT_EQ(serial.trials, kTrials);
    for (const std::size_t threads : {1u, 2u, 4u}) {
      util::ThreadPool pool{threads};
      const auto parallel = run_detection_model_seeded(params, kTrials, seed, &pool);
      EXPECT_EQ(parallel.undetected, serial.undetected)
          << "seed " << seed << ", " << threads << " threads";
    }
    // Repeat run, same seed: bit-identical.
    const auto again = run_detection_model_seeded(params, kTrials, seed, nullptr);
    EXPECT_EQ(again.undetected, serial.undetected);
    undetected.push_back(serial.undetected);
  }
  // Different seeds must not all collapse to one count.
  EXPECT_TRUE(undetected[0] != undetected[1] || undetected[1] != undetected[2]);
}


// --- Section VI multi-user concurrent sessions ------------------------------

class MultiUserAuditTest : public ::testing::Test {
 protected:
  MultiUserAuditTest() : sim(tiny_group(), CloudConfig{2, 1, 313}) {
    for (int u = 0; u < 3; ++u) {
      users.push_back(sim.register_user("multi-" + std::to_string(u)));
      sim.store_data(users.back(), make_blocks(20));
    }
  }

  std::vector<SimAgency::MultiUserSession> make_sessions(std::size_t samples) {
    std::vector<SimAgency::MultiUserSession> sessions;
    for (const auto u : users) {
      sessions.push_back({&sim.server(0), sim.user_key(u).q_id, sim.user_key(u).id, 20,
                          samples});
    }
    return sessions;
  }

  CloudSim sim;
  std::vector<std::size_t> users;
};

TEST_F(MultiUserAuditTest, ThreeUsersOnePairing) {
  auto sessions = make_sessions(8);
  const auto report = sim.agency().audit_storage_multiuser(sessions, sim.rng());
  EXPECT_TRUE(report.accepted);
  EXPECT_EQ(report.sessions, 3u);
  EXPECT_EQ(report.blocks_checked, 24u);
  EXPECT_EQ(report.pairings_used, 1u);  // the Section-VI headline
}

TEST_F(MultiUserAuditTest, OffendingSessionLocated) {
  // Corrupt one user's data on the server, then audit all three at once.
  ServerBehavior corrupter;
  corrupter.corrupt_fraction = 1.0;
  sim.server(0).set_behavior(corrupter);
  const auto victim = sim.register_user("victim");
  sim.store_data(victim, make_blocks(20));
  users.push_back(victim);

  auto sessions = make_sessions(8);
  const auto report = sim.agency().audit_storage_multiuser(sessions, sim.rng());
  EXPECT_FALSE(report.accepted);
  ASSERT_EQ(report.offending_sessions.size(), 1u);
  EXPECT_EQ(report.offending_sessions[0], 3u);  // the victim's session
}

TEST_F(MultiUserAuditTest, EmptySessionListAccepts) {
  std::vector<SimAgency::MultiUserSession> none;
  const auto report = sim.agency().audit_storage_multiuser(none, sim.rng());
  EXPECT_TRUE(report.accepted);
  EXPECT_EQ(report.blocks_checked, 0u);
}

// --- Privacy-cheating market -------------------------------------------------

class ResaleTest : public ::testing::Test {
 protected:
  ResaleTest() : sim(tiny_group(), CloudConfig{1, 1, 55}) {
    user = sim.register_user("victim@sim");
    sim.store_data(user, make_blocks(8));
    ServerBehavior leaky;
    leaky.attempts_resale = true;
    sim.server(0).set_behavior(leaky);
  }
  CloudSim sim;
  std::size_t user = 0;
};

TEST_F(ResaleTest, OutsiderBuyerCannotAuthenticateSoNoSale) {
  const BuyerCredentials outsider{};  // no designated key
  const auto attempt = attempt_resale(tiny_group(), sim.server(0), sim.user_key(user).id,
                                      sim.user_key(user).q_id, 3, outsider);
  EXPECT_TRUE(attempt.offer_made);
  EXPECT_FALSE(attempt.buyer_authenticated);
  EXPECT_FALSE(attempt.sale_completed);
}

TEST_F(ResaleTest, CompromisedVerifierKeyEnablesAuthentication) {
  // Only a full key compromise of a designated verifier re-opens the leak —
  // exactly the Pr[InfoLeak] ≈ Pr[SigForge] boundary of Eq. 16.
  const BuyerCredentials insider{&sim.server(0).key()};
  const auto attempt = attempt_resale(tiny_group(), sim.server(0), sim.user_key(user).id,
                                      sim.user_key(user).q_id, 3, insider);
  EXPECT_TRUE(attempt.buyer_authenticated);
}

TEST_F(ResaleTest, HonestServerRefusesToSell) {
  sim.server(0).set_behavior(ServerBehavior::honest());
  const BuyerCredentials outsider{};
  const auto attempt = attempt_resale(tiny_group(), sim.server(0), sim.user_key(user).id,
                                      sim.user_key(user).q_id, 3, outsider);
  EXPECT_FALSE(attempt.offer_made);
}

TEST_F(ResaleTest, TranscriptsAreSimulatable) {
  Xoshiro256 rng{66};
  const auto& g = tiny_group();
  ibc::Sio sio{g, rng};
  const auto signer = sio.extract("signer");
  const auto verifier = sio.extract("verifier");
  const std::string msg = "for sale";
  const auto pair = make_transcript_pair(
      g, signer, verifier,
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(msg.data()),
                                    msg.size()),
      rng);
  // A genuine and a verifier-forged transcript both pass Eq. (5): possession
  // of a passing transcript proves nothing about authenticity.
  EXPECT_TRUE(pair.both_verify);
}

}  // namespace
}  // namespace seccloud::sim
