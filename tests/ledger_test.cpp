// Forensic verdict ledger: the fixed-width entry codec (round-trip +
// every-byte truncation sweep, the PR-4 crash-sweep pattern), the
// bisection-path recomputation against the actual split rule, the service
// integration (attribution from ledger bytes alone, pre-batch filter
// records), registry occupancy sanity, and the epoch-report JSON summary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bigint/rng.h"
#include "ibc/keys.h"
#include "obs/telemetry.h"
#include "pairing/group.h"
#include "seccloud/service/ledger.h"
#include "seccloud/service/service.h"
#include "sim/fleet.h"

namespace seccloud::service {
namespace {

using num::Xoshiro256;
using pairing::tiny_group;

LedgerEntry sample_entry() {
  LedgerEntry e;
  e.epoch = 17;
  e.user = 0xdeadbeefcafe;
  e.version = 9;
  e.batch = 3;
  e.request_index = 41;
  e.block_index = 2;
  e.entry_in_batch = 11;
  e.verdict = LedgerVerdict::kInvalidSignature;
  e.isolation_depth = 5;
  e.isolation_path = 0b10110;
  e.batch_pairings = 14;
  e.journey_id = 0x0123456789abcdef;
  return e;
}

// --- codec ------------------------------------------------------------------

TEST(LedgerCodec, EntryRoundTrips) {
  const LedgerEntry entry = sample_entry();
  const auto payload = encode_ledger_entry(entry);
  EXPECT_EQ(payload.size(), 64u) << "fixed-width payload";
  const auto decoded = decode_ledger_entry(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, entry);
}

TEST(LedgerCodec, FilteredRequestRecordRoundTrips) {
  LedgerEntry entry;
  entry.epoch = 2;
  entry.user = 7;
  entry.version = 1;
  entry.batch = kNoBatch;  // filtered before batching
  entry.verdict = LedgerVerdict::kStaleReplay;
  const auto decoded = decode_ledger_entry(encode_ledger_entry(entry));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, entry);
}

TEST(LedgerCodec, RejectsWrongSizeAndBadVerdict) {
  auto payload = encode_ledger_entry(sample_entry());
  EXPECT_FALSE(decode_ledger_entry({payload.data(), payload.size() - 1}));
  payload[40] = 0;  // verdict byte below the enum range
  EXPECT_FALSE(decode_ledger_entry(payload).has_value());
  payload[40] = 6;  // above the range
  EXPECT_FALSE(decode_ledger_entry(payload).has_value());
}

TEST(LedgerStream, EveryTruncationPointYieldsAnIntactPrefix) {
  VerdictLedger ledger{/*stream_id=*/5};
  for (std::uint64_t i = 0; i < 4; ++i) {
    LedgerEntry entry = sample_entry();
    entry.epoch = i;
    ledger.append(entry);
  }
  EXPECT_EQ(ledger.records(), 4u);
  const auto bytes = ledger.bytes();
  const std::size_t record_size = bytes.size() / 4;
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const LedgerReplay replay = replay_ledger(bytes.subspan(0, cut));
    EXPECT_EQ(replay.entries.size(), cut / record_size) << "cut=" << cut;
    EXPECT_EQ(replay.torn_tail, cut % record_size != 0) << "cut=" << cut;
    EXPECT_EQ(replay.malformed_payloads, 0u);
    for (std::size_t i = 0; i < replay.entries.size(); ++i) {
      EXPECT_EQ(replay.entries[i].epoch, i) << "append order preserved";
    }
  }
}

TEST(LedgerStream, ForeignRecordTypesCountAsMalformedNotEntries) {
  // A ledger stream should hold only kLedgerEntry records; a snapshot
  // record spliced in frame-decodes but must be surfaced, not dropped.
  VerdictLedger ledger;
  ledger.append(sample_entry());
  std::vector<std::uint8_t> stream{ledger.bytes().begin(), ledger.bytes().end()};
  obs::TelemetryRecord alien;
  alien.type = obs::TelemetryRecordType::kEpochSnapshot;
  alien.seq = 1;
  alien.payload = {'{', '}'};
  const auto alien_bytes = obs::encode_telemetry_record(alien);
  stream.insert(stream.end(), alien_bytes.begin(), alien_bytes.end());

  const LedgerReplay replay = replay_ledger(stream);
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.entries.size(), 1u);
  EXPECT_EQ(replay.malformed_payloads, 1u);
}

// --- bisection path ---------------------------------------------------------

TEST(IsolationPathTest, DescentReachesExactlyTheIndexedEntry) {
  // For every (index, n) the recomputed path, replayed against the actual
  // split rule (mid = lo + (hi-lo)/2, left first), must shrink [0, n) to
  // exactly [index, index+1).
  for (std::size_t n : {1u, 2u, 3u, 7u, 8u, 24u, 100u}) {
    for (std::size_t index = 0; index < n; ++index) {
      const IsolationPath path = bisection_path(index, n);
      std::size_t lo = 0;
      std::size_t hi = n;
      for (std::uint8_t level = 0; level < path.depth; ++level) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if ((path.bits >> level & 1u) != 0) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      EXPECT_EQ(lo, index) << "n=" << n;
      EXPECT_EQ(hi, index + 1) << "n=" << n;
      // Depth is the exact number of halvings needed, ≤ ceil(log2 n).
      std::size_t ceil_log2 = 0;
      while ((std::size_t{1} << ceil_log2) < n) ++ceil_log2;
      EXPECT_LE(path.depth, ceil_log2) << "index=" << index << " n=" << n;
    }
  }
}

TEST(IsolationPathTest, SingletonBatchNeedsNoDescent) {
  const IsolationPath path = bisection_path(0, 1);
  EXPECT_EQ(path.depth, 0u);
  EXPECT_EQ(path.bits, 0u);
}

// --- service integration ----------------------------------------------------

struct LedgerServiceFixture : ::testing::Test {
  const pairing::PairingGroup& g = tiny_group();
  Xoshiro256 rng{5151};
  ibc::Sio sio{g, rng};
  ibc::IdentityKey da = sio.extract("agency@ledger");
  ibc::IdentityKey cs = sio.extract("cs@ledger");

  AuditService make_service(std::size_t batch_capacity = 32) {
    ServiceConfig config;
    config.registry.shards = 4;
    config.epoch.batch_capacity = batch_capacity;
    config.threads = 1;
    return AuditService{g, da, cs, config};
  }
};

TEST_F(LedgerServiceFixture, EveryAuditedEntryGetsExactlyOneRecord) {
  AuditService svc = make_service(/*batch_capacity=*/8);
  VerdictLedger ledger;
  svc.attach_ledger(&ledger);
  sim::FleetWorkload fleet{
      sio, {.users = 16, .active_users = 5, .blocks_per_request = 3, .seed = 21}};
  fleet.populate(svc);
  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  const EpochReport report = svc.run_epoch();
  ASSERT_EQ(report.verified_requests, 5u);

  const LedgerReplay replay = replay_ledger(ledger.bytes());
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.entries.size(), 15u) << "5 requests x 3 blocks";
  for (const auto& entry : replay.entries) {
    EXPECT_EQ(entry.verdict, LedgerVerdict::kVerified);
    EXPECT_NE(entry.batch, kNoBatch);
    EXPECT_LT(entry.batch, report.batches);
    EXPECT_EQ(entry.epoch, report.epoch);
    EXPECT_EQ(entry.isolation_depth, 0u) << "clean entries take no descent";
    EXPECT_EQ(entry.batch_pairings, 2u) << "the clean-batch invariant";
    EXPECT_EQ(entry.version, 1u);
    EXPECT_EQ(entry.journey_id, 0u) << "no journey recorder attached";
  }
}

TEST_F(LedgerServiceFixture, PreBatchFiltersAreRecordedWithNoBatch) {
  AuditService svc = make_service();
  VerdictLedger ledger;
  svc.attach_ledger(&ledger);
  sim::FleetWorkload fleet{
      sio, {.users = 8, .active_users = 3, .blocks_per_request = 2, .seed = 31}};
  fleet.populate(svc);
  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  svc.run_epoch();
  const std::size_t round1 = replay_ledger(ledger.bytes()).entries.size();
  ASSERT_EQ(round1, 6u);

  // Round 2: user 0 replays its audited version; a ghost user has no key.
  for (auto& r : fleet.make_requests(svc, [](std::size_t i) {
         return i == 0 ? sim::FleetBehavior::kStaleReplay
                       : sim::FleetBehavior::kHonest;
       })) {
    svc.submit(std::move(r));
  }
  AuditRequest ghost;
  ghost.user = svc.register_user("ghost@ledger");
  ghost.version = 1;
  ghost.blocks.resize(1);
  svc.submit(std::move(ghost));
  const EpochReport report = svc.run_epoch();
  ASSERT_EQ(report.stale_rejected, 1u);
  ASSERT_EQ(report.unkeyed_rejected, 1u);

  const LedgerReplay replay = replay_ledger(ledger.bytes());
  std::vector<LedgerEntry> filtered;
  for (std::size_t i = round1; i < replay.entries.size(); ++i) {
    if (replay.entries[i].verdict != LedgerVerdict::kVerified) {
      filtered.push_back(replay.entries[i]);
    }
  }
  ASSERT_EQ(filtered.size(), 2u);
  for (const auto& entry : filtered) {
    EXPECT_EQ(entry.batch, kNoBatch) << "filtered before any batch formed";
    EXPECT_EQ(entry.batch_pairings, 0u) << "filters cost zero pairings";
    EXPECT_EQ(entry.epoch, report.epoch);
  }
  EXPECT_EQ(filtered[0].verdict, LedgerVerdict::kStaleReplay);
  EXPECT_EQ(filtered[0].user, fleet.handle(0));
  EXPECT_EQ(filtered[1].verdict, LedgerVerdict::kUnkeyed);
}

TEST_F(LedgerServiceFixture, SnapshotShardHeatMatchesRegistryOccupancy) {
  obs::MetricsRegistry metrics;
  AuditService svc = make_service();
  obs::TelemetrySink sink{metrics};
  svc.attach_telemetry(&sink);
  sim::FleetWorkload fleet{
      sio, {.users = 200, .active_users = 4, .blocks_per_request = 1, .seed = 41}};
  fleet.populate(svc);
  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  svc.run_epoch();

  ASSERT_EQ(sink.ring().size(), 1u);
  const obs::EpochSnapshot& snap = sink.ring().back();
  const auto occupancy = svc.registry().occupancy();
  ASSERT_EQ(snap.shards.size(), occupancy.size());
  std::uint64_t users = 0;
  std::uint64_t keyed = 0;
  for (std::size_t i = 0; i < occupancy.size(); ++i) {
    EXPECT_EQ(snap.shards[i].users, occupancy[i].users);
    EXPECT_EQ(snap.shards[i].probe_max, occupancy[i].probe_max);
    users += occupancy[i].users;
    keyed += occupancy[i].keyed;
    // Probe stats stay coherent: the max probe can't exceed the total, and
    // a populated shard's table must hold its users below the load factor.
    EXPECT_LE(occupancy[i].probe_max, occupancy[i].probe_total);
    if (occupancy[i].users > 0) {
      EXPECT_GT(occupancy[i].table_slots, occupancy[i].users);
    }
  }
  EXPECT_EQ(users, svc.registry().size()) << "occupancy covers every user";
  EXPECT_EQ(users, 200u);
  EXPECT_EQ(keyed, 4u);
}

TEST_F(LedgerServiceFixture, EpochReportJsonCarriesTheSummaryFields) {
  AuditService svc = make_service();
  VerdictLedger ledger;
  svc.attach_ledger(&ledger);
  sim::FleetWorkload fleet{
      sio, {.users = 8, .active_users = 2, .blocks_per_request = 2, .seed = 51}};
  fleet.populate(svc);
  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  const EpochReport report = svc.run_epoch();
  const std::string json = report.to_json();
  for (const char* key :
       {"\"epoch\"", "\"requests\"", "\"verified_requests\"", "\"batches\"",
        "\"verify_pairings\"", "\"retry_after_epochs\"", "\"epoch_ms\"",
        "\"telemetry_ms\"", "\"byzantine_users\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(LedgerVerdictTest, NamesAreStable) {
  EXPECT_STREQ(to_string(LedgerVerdict::kVerified), "verified");
  EXPECT_STREQ(to_string(LedgerVerdict::kInvalidSignature), "invalid-signature");
  EXPECT_STREQ(to_string(LedgerVerdict::kStaleReplay), "stale-replay");
  EXPECT_STREQ(to_string(LedgerVerdict::kUnkeyed), "unkeyed");
  EXPECT_STREQ(to_string(LedgerVerdict::kAttestationFailed), "attestation-failed");
}

}  // namespace
}  // namespace seccloud::service
