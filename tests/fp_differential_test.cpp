// Differential harness for the fixed-limb Montgomery core (ctest label
// `differential`).
//
// Every fixed-core operation is checked against the authoritative
// BigUint/Barrett path on random and adversarial inputs: 0, 1, p−1, p−2,
// the Montgomery constants R mod p and R² mod p (the values that straddle
// the R/p boundary), and full Montgomery-domain round-trips. The layers
// above get the same treatment — PrimeField under both backends, the curve
// scalar ladder, the Miller loop, and FixedPairing line replay must all be
// bit-identical, including on the degenerate points (2-torsion, order-3
// points that force the T = P addition step, negated Q, infinity) that the
// random suites essentially never hit.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "ec/curve.h"
#include "field/fp.h"
#include "field/fp2.h"
#include "field/fp_fixed.h"
#include "pairing/group.h"
#include "pairing/precompute.h"
#include "property_support.h"

namespace seccloud {
namespace {

using field::FieldBackend;
using field::PrimeField;
using field::fixed::Fe;
using field::fixed::MontCtx;
using num::BigUint;
using num::Xoshiro256;
using pairing::PairingGroup;
using pairing::Point;
using testsupport::property_iters;

// ---------------------------------------------------------------------------
// MontCtx vs BigUint reference arithmetic
// ---------------------------------------------------------------------------

class MontCtxDifferential : public ::testing::TestWithParam<const char*> {
 protected:
  MontCtxDifferential() : p(BigUint::from_hex(GetParam())), ctx(p), rng(2024) {}

  /// Adversarial residues plus seeded random ones.
  std::vector<BigUint> interesting_values() {
    std::vector<BigUint> vals{
        BigUint{},                                 // 0
        BigUint{1},                                // 1
        BigUint{2},                                //
        p - BigUint{1},                            // p − 1
        p - BigUint{2},                            // p − 2
        (p + BigUint{1}) >> 1,                     // (p+1)/2
        (BigUint{1} << (64 * p.limb_count())) % p, // R mod p
        (BigUint{1} << (128 * p.limb_count())) % p // R² mod p
    };
    const std::size_t iters = property_iters(24);
    for (std::size_t i = 0; i < iters; ++i) vals.push_back(rng.next_below(p));
    return vals;
  }

  BigUint p;
  MontCtx ctx;
  Xoshiro256 rng;
};

TEST_P(MontCtxDifferential, RoundTripsAndDomainConversions) {
  for (const BigUint& a : interesting_values()) {
    const Fe fe = ctx.from_biguint(a);
    EXPECT_EQ(ctx.to_biguint(fe), a);
    // to_mont/from_mont must be mutually inverse on every residue.
    EXPECT_EQ(ctx.to_biguint(ctx.from_mont(ctx.to_mont(fe))), a);
    // And the Montgomery representative must equal a·R mod p.
    const BigUint r = (BigUint{1} << (64 * p.limb_count())) % p;
    EXPECT_EQ(ctx.to_biguint(ctx.to_mont(fe)), (a * r) % p);
  }
}

TEST_P(MontCtxDifferential, AddSubNegMatchReference) {
  const auto vals = interesting_values();
  for (const BigUint& a : vals) {
    const Fe fa = ctx.load(a);
    EXPECT_EQ(ctx.to_biguint(ctx.neg(fa)), a.is_zero() ? BigUint{} : p - a);
    for (const BigUint& b : vals) {
      const Fe fb = ctx.load(b);
      EXPECT_EQ(ctx.to_biguint(ctx.add(fa, fb)), (a + b) % p);
      const BigUint expect_sub = a >= b ? a - b : a + p - b;
      EXPECT_EQ(ctx.to_biguint(ctx.sub(fa, fb)), expect_sub);
    }
  }
}

TEST_P(MontCtxDifferential, MulAndSqrMatchReference) {
  const auto vals = interesting_values();
  for (const BigUint& a : vals) {
    const Fe fa = ctx.load(a);
    EXPECT_EQ(ctx.to_biguint(ctx.sqr_canonical(fa)), a.squared() % p);
    // Montgomery-domain closure: mont_mul(ã, b̃) = (a·b)~.
    const Fe ma = ctx.to_mont(fa);
    EXPECT_EQ(ctx.to_biguint(ctx.from_mont(ctx.mont_sqr(ma))), a.squared() % p);
    for (const BigUint& b : vals) {
      const Fe fb = ctx.load(b);
      EXPECT_EQ(ctx.to_biguint(ctx.mul_canonical(fa, fb)), (a * b) % p);
      const Fe mb = ctx.to_mont(fb);
      EXPECT_EQ(ctx.to_biguint(ctx.from_mont(ctx.mont_mul(ma, mb))), (a * b) % p);
    }
  }
}

TEST_P(MontCtxDifferential, MulWordMatchesReference) {
  const std::uint64_t words[] = {0, 1, 2, 3, 4, 8, 0xFFFFFFFFFFFFFFFFull};
  for (const BigUint& a : interesting_values()) {
    const Fe fa = ctx.load(a);
    for (const std::uint64_t k : words) {
      BigUint expect = a;
      expect *= k;
      EXPECT_EQ(ctx.to_biguint(ctx.mul_word(fa, k)), expect % p);
    }
  }
}

TEST_P(MontCtxDifferential, PowMatchesReference) {
  const PrimeField reference(p, FieldBackend::kBigint);
  const std::vector<BigUint> exponents{BigUint{},          BigUint{1},
                                       BigUint{2},         BigUint{16},
                                       p - BigUint{1},     p - BigUint{2},
                                       rng.next_below(p)};
  for (const BigUint& a : interesting_values()) {
    const Fe ma = ctx.to_mont(ctx.load(a));
    for (const BigUint& e : exponents) {
      EXPECT_EQ(ctx.to_biguint(ctx.from_mont(ctx.pow_mont(ma, e))),
                reference.pow(a, e));
    }
  }
}

TEST_P(MontCtxDifferential, InverseMatchesReferenceAndVerifies) {
  const PrimeField reference(p, FieldBackend::kBigint);
  EXPECT_FALSE(ctx.inv_mont(Fe{}).has_value());
  for (const BigUint& a : interesting_values()) {
    if (a.is_zero()) continue;
    const Fe ma = ctx.to_mont(ctx.load(a));
    const auto iv = ctx.inv_mont(ma);
    ASSERT_TRUE(iv.has_value()) << a.to_hex();
    EXPECT_EQ(ctx.to_biguint(ctx.from_mont(*iv)), *reference.inv(a));
    // a·a⁻¹ = 1 in-domain.
    EXPECT_EQ(ctx.to_biguint(ctx.from_mont(ctx.mont_mul(ma, *iv))), BigUint{1});
  }
}

TEST_P(MontCtxDifferential, BatchInversionMatchesSingles) {
  std::vector<Fe> xs;
  std::vector<BigUint> raw;
  for (const BigUint& a : interesting_values()) {
    if (a.is_zero()) continue;
    raw.push_back(a);
    xs.push_back(ctx.to_mont(ctx.load(a)));
  }
  const std::vector<Fe> inv = ctx.inv_batch_mont(xs);
  ASSERT_EQ(inv.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(ctx.to_biguint(ctx.from_mont(inv[i])),
              ctx.to_biguint(ctx.from_mont(*ctx.inv_mont(xs[i]))));
  }
  EXPECT_THROW(ctx.inv_batch_mont(std::vector<Fe>{Fe{}}), std::domain_error);
}

INSTANTIATE_TEST_SUITE_P(
    Moduli, MontCtxDifferential,
    ::testing::Values(
        // The pinned 512-bit SS512 prime (8 limbs — the production width).
        "b7310e862efdfa3df84ca43f1e167c67802b80efc019a0f6ee55a30059ccffb44e02bfe"
        "78b9182024ef8b78563010f4d6eaa581df379f1e9fcd912a61fa26b6f",
        // The tiny 96-bit test prime (2 limbs).
        "a1d1466b6a6152952b0112f3",
        // One-limb primes: 2^64 − 59 and a small one (Tonelli–Shanks class).
        "ffffffffffffffc5", "d"));

// MontCtx must refuse what it cannot represent; PrimeField must refuse a
// forced-fixed backend for the same moduli.
TEST(MontCtxGuards, RejectsUnsupportedModuli) {
  EXPECT_FALSE(MontCtx::fits(BigUint{4}));          // even
  EXPECT_FALSE(MontCtx::fits(BigUint{1}));          // < 3
  EXPECT_FALSE(MontCtx::fits(BigUint{1} << 520));   // > 8 limbs (and even)
  const BigUint wide = (BigUint{1} << 520) + BigUint{21};
  EXPECT_FALSE(MontCtx::fits(wide));                // > 8 limbs, odd
  EXPECT_THROW(MontCtx{wide}, std::invalid_argument);
  EXPECT_THROW(PrimeField(wide, FieldBackend::kFixed), std::invalid_argument);
  EXPECT_FALSE(PrimeField(wide).has_fixed_core());  // kAuto falls back
}

// ---------------------------------------------------------------------------
// PrimeField: fixed backend vs forced BigUint backend
// ---------------------------------------------------------------------------

class PrimeFieldBackendDifferential : public ::testing::TestWithParam<const char*> {
 protected:
  PrimeFieldBackendDifferential()
      : p(BigUint::from_hex(GetParam())),
        fixed(p, FieldBackend::kFixed),
        bigint(p, FieldBackend::kBigint),
        rng(77) {}

  BigUint p;
  PrimeField fixed;
  PrimeField bigint;
  Xoshiro256 rng;
};

TEST_P(PrimeFieldBackendDifferential, AllOperationsBitIdentical) {
  ASSERT_TRUE(fixed.has_fixed_core());
  ASSERT_FALSE(bigint.has_fixed_core());
  std::vector<BigUint> vals{BigUint{}, BigUint{1}, p - BigUint{1}, p - BigUint{2}};
  const std::size_t iters = property_iters(16);
  for (std::size_t i = 0; i < iters; ++i) vals.push_back(rng.next_below(p));

  std::vector<BigUint> nonzero;
  for (const BigUint& a : vals) {
    if (!a.is_zero()) nonzero.push_back(a);
    EXPECT_EQ(fixed.sqr(a), bigint.sqr(a));
    EXPECT_EQ(fixed.mul_small(a, 8), bigint.mul_small(a, 8));
    EXPECT_EQ(fixed.pow(a, p - BigUint{2}), bigint.pow(a, p - BigUint{2}));
    EXPECT_EQ(fixed.inv(a), bigint.inv(a));
    EXPECT_EQ(fixed.sqrt(a), bigint.sqrt(a));
    for (const BigUint& b : vals) {
      EXPECT_EQ(fixed.mul(a, b), bigint.mul(a, b));
    }
  }
  EXPECT_EQ(fixed.inv_batch(nonzero), bigint.inv_batch(nonzero));
}

INSTANTIATE_TEST_SUITE_P(
    Moduli, PrimeFieldBackendDifferential,
    ::testing::Values(
        "b7310e862efdfa3df84ca43f1e167c67802b80efc019a0f6ee55a30059ccffb44e02bfe"
        "78b9182024ef8b78563010f4d6eaa581df379f1e9fcd912a61fa26b6f",
        "a1d1466b6a6152952b0112f3",
        // p ≡ 1 (mod 4): exercises the Tonelli–Shanks sqrt under both
        // backends.
        "ffffffffffffffc5"));

// ---------------------------------------------------------------------------
// Curve scalar multiplication and pairing: kAuto vs kBigint groups
// ---------------------------------------------------------------------------

struct GroupPair {
  GroupPair(const pairing::TypeAParams& params)
      : fast(params), slow(params, FieldBackend::kBigint) {}
  PairingGroup fast;
  PairingGroup slow;
};

GroupPair& default_pairs() {
  static GroupPair pairs{pairing::default_params()};
  return pairs;
}

GroupPair& tiny_pairs() {
  static GroupPair pairs{pairing::tiny_params()};
  return pairs;
}

TEST(CurveBackendDifferential, ScalarMultiplicationBitIdentical) {
  for (GroupPair* gp : {&tiny_pairs(), &default_pairs()}) {
    ASSERT_TRUE(gp->fast.fp().has_fixed_core());
    ASSERT_FALSE(gp->slow.fp().has_fixed_core());
    ASSERT_EQ(gp->fast.generator(), gp->slow.generator());

    Xoshiro256 rng(5150);
    const Point& g = gp->fast.generator();
    const BigUint& q = gp->fast.order();
    std::vector<BigUint> scalars{BigUint{1}, BigUint{2},  BigUint{3},
                                 BigUint{7}, BigUint{255}, BigUint{256},
                                 q - BigUint{1}, q};
    const std::size_t iters = property_iters(8);
    for (std::size_t i = 0; i < iters; ++i) scalars.push_back(gp->fast.random_scalar(rng));

    for (const BigUint& k : scalars) {
      EXPECT_EQ(gp->fast.curve().mul(k, g), gp->slow.curve().mul(k, g))
          << "k=" << k.to_hex();
    }
    // multi_mul walks a different (interleaved) ladder — compare it too.
    const Point g2 = gp->fast.curve().mul(BigUint{2}, g);
    const std::vector<Point> pts{g, g2, gp->fast.curve().neg(g)};
    const std::vector<BigUint> ks{scalars[0], scalars.back(), q - BigUint{1}};
    EXPECT_EQ(gp->fast.curve().multi_mul(ks, pts), gp->slow.curve().multi_mul(ks, pts));
  }
}

Point small_order_point(const PairingGroup& g, std::uint64_t d, Xoshiro256& rng);

TEST(CurveBackendDifferential, SmallOrderBasePointsSurviveWnafTable) {
  // Regression: the wNAF precompute table holds the odd multiples 3P, 5P,
  // 7P, and a base point of order 3 collapses 3P to O mid-table — both
  // backends used to throw domain_error out of the batch affine conversion
  // for any scalar wide enough to leave the tiny double-and-add path.
  for (GroupPair* gp : {&tiny_pairs(), &default_pairs()}) {
    Xoshiro256 rng(271828);
    const BigUint& q = gp->fast.order();
    for (const std::uint64_t d : {2ull, 3ull, 4ull}) {
      const Point pt = small_order_point(gp->fast, d, rng);
      for (const BigUint& k :
           {BigUint{256}, BigUint{1000}, q, q + BigUint{12345}}) {
        const Point fast = gp->fast.curve().mul(k, pt);
        const Point slow = gp->slow.curve().mul(k, pt);
        EXPECT_EQ(fast, slow) << "d=" << d << " k=" << k.to_hex();
        // k·P depends only on k mod ord(P), and ord(P) | d, so reducing the
        // scalar mod d (which stays on the tiny double-and-add path) must
        // land on the same point.
        EXPECT_EQ(fast, gp->fast.curve().mul(k % BigUint{d}, pt))
            << "d=" << d << " k=" << k.to_hex();
      }
    }
  }
}

TEST(PairingBackendDifferential, PairingsBitIdentical) {
  for (GroupPair* gp : {&tiny_pairs(), &default_pairs()}) {
    Xoshiro256 rng(31337);
    const Point& g = gp->fast.generator();
    for (std::size_t i = 0; i < property_iters(4); ++i) {
      const Point a = gp->fast.mul(gp->fast.random_scalar(rng), g);
      const Point b = gp->fast.mul(gp->fast.random_scalar(rng), g);
      EXPECT_EQ(gp->fast.pair(a, b), gp->slow.pair(a, b));
      EXPECT_EQ(gp->fast.miller(a, b), gp->slow.miller(a, b));
    }
    // Bilinearity still holds through the fixed path.
    const Point a = gp->fast.mul(BigUint{5}, g);
    EXPECT_EQ(gp->fast.pair(a, g), gp->fast.gt_pow(gp->fast.pair(g, g), BigUint{5}));
  }
}

TEST(PairingBackendDifferential, FixedPairingMatchesDirectPairing) {
  for (GroupPair* gp : {&tiny_pairs(), &default_pairs()}) {
    Xoshiro256 rng(404);
    const Point& g = gp->fast.generator();
    const Point fixed_arg = gp->fast.mul(gp->fast.random_scalar(rng), g);
    const pairing::FixedPairing fast_fp(gp->fast, fixed_arg);
    const pairing::FixedPairing slow_fp(gp->slow, fixed_arg);
    for (std::size_t i = 0; i < property_iters(4); ++i) {
      const Point q = gp->fast.mul(gp->fast.random_scalar(rng), g);
      const auto direct = gp->fast.pair(fixed_arg, q);
      EXPECT_EQ(fast_fp.pair_with(q), direct);
      EXPECT_EQ(slow_fp.pair_with(q), direct);
    }
  }
}

// ---------------------------------------------------------------------------
// Degenerate-point differential: small-torsion points drive the Miller loop
// through the T = P tangent step, the y = 0 doubling, and T = −P vertical
// line — paths random subgroup points never reach. All three implementations
// (generic loop under both backends, FixedPairing replay) must agree
// bit-identically.
// ---------------------------------------------------------------------------

/// Points of order dividing d on the full curve (order p + 1), via the
/// cofactor map ((p+1)/d)·R for random R. Requires d | p + 1.
Point small_order_point(const PairingGroup& g, std::uint64_t d, Xoshiro256& rng) {
  const BigUint full_order = g.params().p + BigUint{1};
  EXPECT_TRUE((full_order % BigUint{d}).is_zero());
  const BigUint cof = full_order / BigUint{d};
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Point r = g.curve().random_point(rng);
    const Point s = g.curve().mul(cof, r);
    if (!s.infinity) return s;
  }
  ADD_FAILURE() << "no point of order dividing " << d << " found";
  return Point::at_infinity();
}

TEST(PairingEdgePointDifferential, DegeneratePathsBitIdentical) {
  for (GroupPair* gp : {&tiny_pairs(), &default_pairs()}) {
    Xoshiro256 rng(8086);
    const Point& g = gp->fast.generator();
    const Point q1 = gp->fast.mul(gp->fast.random_scalar(rng), g);

    // (0, 0) is the canonical 2-torsion point of y² = x³ + x; order-3 and
    // order-4 points come from cofactor maps (3 | p+1 and 4 | p+1 on both
    // pinned curves).
    const Point two_torsion = Point::affine(BigUint{}, BigUint{});
    ASSERT_TRUE(gp->fast.curve().is_on_curve(two_torsion));
    ASSERT_TRUE(gp->fast.curve().mul(BigUint{2}, two_torsion).infinity);
    const Point order3 = small_order_point(gp->fast, 3, rng);
    const Point order4 = small_order_point(gp->fast, 4, rng);

    const std::vector<std::pair<Point, Point>> cases{
        {two_torsion, q1},                    // y = 0 doubling → infinity
        {two_torsion, two_torsion},           //
        {order3, q1},                         // forces T = P addition steps
        {order3, order3},                     //
        {order4, q1},                         // hits 2-torsion mid-ladder
        {q1, two_torsion},                    // degenerate evaluation side
        {q1, gp->fast.neg(q1)},               // negated Q
        {g, q1},                              // sanity: generic pair
    };
    for (const auto& [a, b] : cases) {
      const auto expect = gp->slow.pair(a, b);
      EXPECT_EQ(gp->fast.pair(a, b), expect)
          << a.x.to_hex() << "," << a.y.to_hex();
      const pairing::FixedPairing fp_fast(gp->fast, a);
      const pairing::FixedPairing fp_slow(gp->slow, a);
      EXPECT_EQ(fp_fast.pair_with(b), expect);
      EXPECT_EQ(fp_slow.pair_with(b), expect);
    }

    // Infinity on either side short-circuits to 1 everywhere.
    const Point inf = Point::at_infinity();
    EXPECT_EQ(gp->fast.pair(inf, q1), gp->fast.gt_one());
    EXPECT_EQ(gp->slow.pair(inf, q1), gp->slow.gt_one());
    EXPECT_EQ(pairing::FixedPairing(gp->fast, inf).pair_with(q1), gp->fast.gt_one());
    EXPECT_EQ(pairing::FixedPairing(gp->fast, q1).pair_with(inf), gp->fast.gt_one());
  }
}

}  // namespace
}  // namespace seccloud
