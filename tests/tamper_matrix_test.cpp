// Cross-scheme tamper matrix: for every signature scheme in the repo —
// RSA-FDH, ECDSA/P-256, BGLS, identity-based (Cha–Cheon), and the
// designated-verifier transform — a valid signature verifies, and tampering
// with each element of the triple {message, signature, public key/identity}
// independently makes verification fail. The tampered signature/key is
// itself well-formed (a real signature or key for something else), so the
// matrix exercises the cryptographic binding, not input parsing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/bgls.h"
#include "baselines/ecdsa.h"
#include "baselines/rsa.h"
#include "bigint/rng.h"
#include "ec/p256.h"
#include "ibc/dvs.h"
#include "ibc/ibs.h"
#include "ibc/keys.h"
#include "pairing/group.h"

namespace seccloud {
namespace {

using num::BigUint;
using num::Xoshiro256;
using pairing::tiny_group;

const std::vector<std::uint8_t> kMessage{'a', 'u', 'd', 'i', 't', '-', 'm', 'e'};
const std::vector<std::uint8_t> kOtherMessage{'a', 'u', 'd', 'i', 't', '-', 'M', 'e'};

TEST(TamperMatrixTest, RsaFdh) {
  Xoshiro256 rng{701};
  const auto key = baselines::rsa_generate(256, rng);
  const auto other = baselines::rsa_generate(256, rng);
  const BigUint sig = baselines::rsa_sign(key, kMessage);

  EXPECT_TRUE(baselines::rsa_verify(key.n, key.e, kMessage, sig));
  // message
  EXPECT_FALSE(baselines::rsa_verify(key.n, key.e, kOtherMessage, sig));
  // signature: same message, wrong key's signature — and a nudged value
  EXPECT_FALSE(
      baselines::rsa_verify(key.n, key.e, kMessage, baselines::rsa_sign(other, kMessage)));
  EXPECT_FALSE(baselines::rsa_verify(key.n, key.e, kMessage, sig + BigUint{1}));
  // public key
  EXPECT_FALSE(baselines::rsa_verify(other.n, other.e, kMessage, sig));
}

TEST(TamperMatrixTest, EcdsaP256) {
  Xoshiro256 rng{702};
  const ec::P256 p256;
  const auto key = baselines::ecdsa_generate(p256, rng);
  const auto other = baselines::ecdsa_generate(p256, rng);
  const auto sig = baselines::ecdsa_sign(p256, key, kMessage, rng);

  EXPECT_TRUE(baselines::ecdsa_verify(p256, key.q, kMessage, sig));
  // message
  EXPECT_FALSE(baselines::ecdsa_verify(p256, key.q, kOtherMessage, sig));
  // signature: each component nudged, and a wrong-key signature
  EXPECT_FALSE(
      baselines::ecdsa_verify(p256, key.q, kMessage, {sig.r + BigUint{1}, sig.s}));
  EXPECT_FALSE(
      baselines::ecdsa_verify(p256, key.q, kMessage, {sig.r, sig.s + BigUint{1}}));
  EXPECT_FALSE(baselines::ecdsa_verify(p256, key.q, kMessage,
                                       baselines::ecdsa_sign(p256, other, kMessage, rng)));
  // public key
  EXPECT_FALSE(baselines::ecdsa_verify(p256, other.q, kMessage, sig));
}

TEST(TamperMatrixTest, Bgls) {
  Xoshiro256 rng{703};
  const auto& g = tiny_group();
  const auto key = baselines::bgls_generate(g, rng);
  const auto other = baselines::bgls_generate(g, rng);
  const auto sig = baselines::bgls_sign(g, key, kMessage);

  EXPECT_TRUE(baselines::bgls_verify(g, key.v, kMessage, sig));
  // message
  EXPECT_FALSE(baselines::bgls_verify(g, key.v, kOtherMessage, sig));
  // signature: wrong-key signature, and the doubled point (still on-curve)
  EXPECT_FALSE(
      baselines::bgls_verify(g, key.v, kMessage, baselines::bgls_sign(g, other, kMessage)));
  EXPECT_FALSE(baselines::bgls_verify(g, key.v, kMessage, g.mul(BigUint{2}, sig)));
  // public key
  EXPECT_FALSE(baselines::bgls_verify(g, other.v, kMessage, sig));
}

TEST(TamperMatrixTest, IdentityBasedSignature) {
  Xoshiro256 rng{704};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto signer = sio.extract("signer@tamper");
  const auto other = sio.extract("other@tamper");
  const auto sig = ibc::ibs_sign(g, signer, kMessage, rng);

  EXPECT_TRUE(ibc::ibs_verify(g, sio.params(), signer.id, kMessage, sig));
  // message
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), signer.id, kOtherMessage, sig));
  // signature: another identity's signature over the same message, and each
  // component swapped for an on-curve value
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), signer.id, kMessage,
                               ibc::ibs_sign(g, other, kMessage, rng)));
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), signer.id, kMessage,
                               {g.mul(BigUint{2}, sig.u), sig.v}));
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), signer.id, kMessage,
                               {sig.u, g.mul(BigUint{2}, sig.v)}));
  // identity
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), other.id, kMessage, sig));
}

TEST(TamperMatrixTest, DesignatedVerifierSignature) {
  Xoshiro256 rng{705};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto signer = sio.extract("user@tamper");
  const auto other_signer = sio.extract("mallory@tamper");
  const auto verifier = sio.extract("cs@tamper");
  const auto other_verifier = sio.extract("da@tamper");

  const auto ibs = ibc::ibs_sign(g, signer, kMessage, rng);
  const auto sig = ibc::dv_transform(g, ibs, verifier.q_id);

  EXPECT_TRUE(ibc::dv_verify(g, signer.q_id, kMessage, sig, verifier));
  // message
  EXPECT_FALSE(ibc::dv_verify(g, signer.q_id, kOtherMessage, sig, verifier));
  // signature: a different message's Σ with this U, and a perturbed Σ
  const auto other_sig =
      ibc::dv_transform(g, ibc::ibs_sign(g, signer, kOtherMessage, rng), verifier.q_id);
  EXPECT_FALSE(
      ibc::dv_verify(g, signer.q_id, kMessage, {sig.u, other_sig.sigma}, verifier));
  EXPECT_FALSE(ibc::dv_verify(g, signer.q_id, kMessage,
                              {sig.u, g.gt_mul(sig.sigma, sig.sigma)}, verifier));
  // signer identity
  EXPECT_FALSE(ibc::dv_verify(g, other_signer.q_id, kMessage, sig, verifier));
  // designation: Σ targeted at CS convinces nobody else (the privacy core)
  EXPECT_FALSE(ibc::dv_verify(g, signer.q_id, kMessage, sig, other_verifier));
}

}  // namespace
}  // namespace seccloud
