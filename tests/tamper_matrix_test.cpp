// Cross-scheme tamper matrix: for every signature scheme in the repo —
// RSA-FDH, ECDSA/P-256, BGLS, identity-based (Cha–Cheon), and the
// designated-verifier transform — a valid signature verifies, and tampering
// with each element of the triple {message, signature, public key/identity}
// independently makes verification fail. The tampered signature/key is
// itself well-formed (a real signature or key for something else), so the
// matrix exercises the cryptographic binding, not input parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baselines/bgls.h"
#include "baselines/ecdsa.h"
#include "baselines/rsa.h"
#include "bigint/rng.h"
#include "ec/p256.h"
#include "ibc/dvs.h"
#include "ibc/ibs.h"
#include "ibc/keys.h"
#include "obs/journey.h"
#include "pairing/group.h"
#include "seccloud/service/ledger.h"
#include "seccloud/service/service.h"
#include "sim/fleet.h"

namespace seccloud {
namespace {

using num::BigUint;
using num::Xoshiro256;
using pairing::tiny_group;

const std::vector<std::uint8_t> kMessage{'a', 'u', 'd', 'i', 't', '-', 'm', 'e'};
const std::vector<std::uint8_t> kOtherMessage{'a', 'u', 'd', 'i', 't', '-', 'M', 'e'};

TEST(TamperMatrixTest, RsaFdh) {
  Xoshiro256 rng{701};
  const auto key = baselines::rsa_generate(256, rng);
  const auto other = baselines::rsa_generate(256, rng);
  const BigUint sig = baselines::rsa_sign(key, kMessage);

  EXPECT_TRUE(baselines::rsa_verify(key.n, key.e, kMessage, sig));
  // message
  EXPECT_FALSE(baselines::rsa_verify(key.n, key.e, kOtherMessage, sig));
  // signature: same message, wrong key's signature — and a nudged value
  EXPECT_FALSE(
      baselines::rsa_verify(key.n, key.e, kMessage, baselines::rsa_sign(other, kMessage)));
  EXPECT_FALSE(baselines::rsa_verify(key.n, key.e, kMessage, sig + BigUint{1}));
  // public key
  EXPECT_FALSE(baselines::rsa_verify(other.n, other.e, kMessage, sig));
}

TEST(TamperMatrixTest, EcdsaP256) {
  Xoshiro256 rng{702};
  const ec::P256 p256;
  const auto key = baselines::ecdsa_generate(p256, rng);
  const auto other = baselines::ecdsa_generate(p256, rng);
  const auto sig = baselines::ecdsa_sign(p256, key, kMessage, rng);

  EXPECT_TRUE(baselines::ecdsa_verify(p256, key.q, kMessage, sig));
  // message
  EXPECT_FALSE(baselines::ecdsa_verify(p256, key.q, kOtherMessage, sig));
  // signature: each component nudged, and a wrong-key signature
  EXPECT_FALSE(
      baselines::ecdsa_verify(p256, key.q, kMessage, {sig.r + BigUint{1}, sig.s}));
  EXPECT_FALSE(
      baselines::ecdsa_verify(p256, key.q, kMessage, {sig.r, sig.s + BigUint{1}}));
  EXPECT_FALSE(baselines::ecdsa_verify(p256, key.q, kMessage,
                                       baselines::ecdsa_sign(p256, other, kMessage, rng)));
  // public key
  EXPECT_FALSE(baselines::ecdsa_verify(p256, other.q, kMessage, sig));
}

TEST(TamperMatrixTest, Bgls) {
  Xoshiro256 rng{703};
  const auto& g = tiny_group();
  const auto key = baselines::bgls_generate(g, rng);
  const auto other = baselines::bgls_generate(g, rng);
  const auto sig = baselines::bgls_sign(g, key, kMessage);

  EXPECT_TRUE(baselines::bgls_verify(g, key.v, kMessage, sig));
  // message
  EXPECT_FALSE(baselines::bgls_verify(g, key.v, kOtherMessage, sig));
  // signature: wrong-key signature, and the doubled point (still on-curve)
  EXPECT_FALSE(
      baselines::bgls_verify(g, key.v, kMessage, baselines::bgls_sign(g, other, kMessage)));
  EXPECT_FALSE(baselines::bgls_verify(g, key.v, kMessage, g.mul(BigUint{2}, sig)));
  // public key
  EXPECT_FALSE(baselines::bgls_verify(g, other.v, kMessage, sig));
}

TEST(TamperMatrixTest, IdentityBasedSignature) {
  Xoshiro256 rng{704};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto signer = sio.extract("signer@tamper");
  const auto other = sio.extract("other@tamper");
  const auto sig = ibc::ibs_sign(g, signer, kMessage, rng);

  EXPECT_TRUE(ibc::ibs_verify(g, sio.params(), signer.id, kMessage, sig));
  // message
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), signer.id, kOtherMessage, sig));
  // signature: another identity's signature over the same message, and each
  // component swapped for an on-curve value
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), signer.id, kMessage,
                               ibc::ibs_sign(g, other, kMessage, rng)));
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), signer.id, kMessage,
                               {g.mul(BigUint{2}, sig.u), sig.v}));
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), signer.id, kMessage,
                               {sig.u, g.mul(BigUint{2}, sig.v)}));
  // identity
  EXPECT_FALSE(ibc::ibs_verify(g, sio.params(), other.id, kMessage, sig));
}

TEST(TamperMatrixTest, DesignatedVerifierSignature) {
  Xoshiro256 rng{705};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto signer = sio.extract("user@tamper");
  const auto other_signer = sio.extract("mallory@tamper");
  const auto verifier = sio.extract("cs@tamper");
  const auto other_verifier = sio.extract("da@tamper");

  const auto ibs = ibc::ibs_sign(g, signer, kMessage, rng);
  const auto sig = ibc::dv_transform(g, ibs, verifier.q_id);

  EXPECT_TRUE(ibc::dv_verify(g, signer.q_id, kMessage, sig, verifier));
  // message
  EXPECT_FALSE(ibc::dv_verify(g, signer.q_id, kOtherMessage, sig, verifier));
  // signature: a different message's Σ with this U, and a perturbed Σ
  const auto other_sig =
      ibc::dv_transform(g, ibc::ibs_sign(g, signer, kOtherMessage, rng), verifier.q_id);
  EXPECT_FALSE(
      ibc::dv_verify(g, signer.q_id, kMessage, {sig.u, other_sig.sigma}, verifier));
  EXPECT_FALSE(ibc::dv_verify(g, signer.q_id, kMessage,
                              {sig.u, g.gt_mul(sig.sigma, sig.sigma)}, verifier));
  // signer identity
  EXPECT_FALSE(ibc::dv_verify(g, other_signer.q_id, kMessage, sig, verifier));
  // designation: Σ targeted at CS convinces nobody else (the privacy core)
  EXPECT_FALSE(ibc::dv_verify(g, signer.q_id, kMessage, sig, other_verifier));
}

// --- batch-bisection rows ----------------------------------------------------
// For every scheme: a batch of 32 signatures with 1, 2, and 5 corrupted
// members, isolated through ibc::bisect_invalid — the oracle being the
// scheme's natural range check (the true sub-aggregate for BGLS and DVS, a
// member sweep elsewhere). The isolated set must match the corruption set
// exactly; corrupted entries are well-formed values of the right type, so
// the binding, not parsing, is what fails.

const std::vector<std::vector<std::size_t>> kCorruptionRows = {
    {17}, {4, 26}, {0, 7, 15, 22, 31}};
constexpr std::size_t kBatchSize = 32;

std::vector<std::vector<std::uint8_t>> batch_messages() {
  std::vector<std::vector<std::uint8_t>> messages;
  for (std::size_t i = 0; i < kBatchSize; ++i) {
    messages.push_back({'b', 'a', 't', 'c', 'h', static_cast<std::uint8_t>(i)});
  }
  return messages;
}

/// Runs every corruption row: `corrupted(bad)` returns the per-index
/// validity oracle for a batch whose members at `bad` were corrupted.
void expect_rows_isolated(
    const std::function<std::function<bool(std::size_t, std::size_t)>(
        const std::vector<std::size_t>&)>& corrupted) {
  for (const auto& bad : kCorruptionRows) {
    ibc::BisectionStats stats;
    const auto range_valid = corrupted(bad);
    EXPECT_EQ(ibc::bisect_invalid(kBatchSize, range_valid, &stats), bad)
        << bad.size() << " corruptions";
    EXPECT_LE(stats.max_depth, 5u);  // log2(32)
  }
}

TEST(TamperMatrixTest, RsaFdhBatchBisection) {
  Xoshiro256 rng{711};
  const auto key = baselines::rsa_generate(256, rng);
  const auto messages = batch_messages();
  std::vector<BigUint> sigs;
  for (const auto& m : messages) sigs.push_back(baselines::rsa_sign(key, m));

  expect_rows_isolated([&](const std::vector<std::size_t>& bad) {
    auto tampered = sigs;
    for (const std::size_t i : bad) tampered[i] = tampered[i] + BigUint{1};
    return [&key, &messages, tampered](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (!baselines::rsa_verify(key.n, key.e, messages[i], tampered[i])) return false;
      }
      return true;
    };
  });
}

TEST(TamperMatrixTest, EcdsaP256BatchBisection) {
  Xoshiro256 rng{712};
  const ec::P256 p256;
  const auto key = baselines::ecdsa_generate(p256, rng);
  const auto messages = batch_messages();
  std::vector<baselines::EcdsaSignature> sigs;
  for (const auto& m : messages) sigs.push_back(baselines::ecdsa_sign(p256, key, m, rng));

  expect_rows_isolated([&](const std::vector<std::size_t>& bad) {
    auto tampered = sigs;
    for (const std::size_t i : bad) tampered[i].s = tampered[i].s + BigUint{1};
    return [&p256, &key, &messages, tampered](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (!baselines::ecdsa_verify(p256, key.q, messages[i], tampered[i])) return false;
      }
      return true;
    };
  });
}

TEST(TamperMatrixTest, BglsBatchBisection) {
  Xoshiro256 rng{713};
  const auto& g = tiny_group();
  const auto key = baselines::bgls_generate(g, rng);
  const auto messages = batch_messages();  // pairwise distinct, as BGLS requires
  std::vector<pairing::Point> sigs;
  for (const auto& m : messages) sigs.push_back(baselines::bgls_sign(g, key, m));

  expect_rows_isolated([&](const std::vector<std::size_t>& bad) {
    auto tampered = sigs;
    for (const std::size_t i : bad) tampered[i] = g.mul(BigUint{2}, tampered[i]);
    // The true sub-aggregate oracle: aggregate the range and verify it with
    // one multi-pairing check, exactly how a BGLS verifier would bisect.
    return [&g, &key, &messages, tampered](std::size_t lo, std::size_t hi) {
      std::vector<baselines::BglsItem> items;
      for (std::size_t i = lo; i < hi; ++i) items.push_back({key.v, messages[i]});
      const std::span<const pairing::Point> range{tampered.data() + lo, hi - lo};
      return baselines::bgls_aggregate_verify(g, items, baselines::bgls_aggregate(g, range));
    };
  });
}

TEST(TamperMatrixTest, IdentityBasedSignatureBatchBisection) {
  Xoshiro256 rng{714};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto signer = sio.extract("signer@batch-tamper");
  const auto messages = batch_messages();
  std::vector<ibc::IbsSignature> sigs;
  for (const auto& m : messages) sigs.push_back(ibc::ibs_sign(g, signer, m, rng));

  expect_rows_isolated([&](const std::vector<std::size_t>& bad) {
    auto tampered = sigs;
    for (const std::size_t i : bad) tampered[i].v = g.mul(BigUint{2}, tampered[i].v);
    return [&g, &sio, &signer, &messages, tampered](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (!ibc::ibs_verify(g, sio.params(), signer.id, messages[i], tampered[i])) {
          return false;
        }
      }
      return true;
    };
  });
}

TEST(TamperMatrixTest, DesignatedVerifierBatchBisection) {
  Xoshiro256 rng{715};
  const auto& g = tiny_group();
  const ibc::Sio sio{g, rng};
  const auto signer = sio.extract("user@batch-tamper");
  const auto verifier = sio.extract("cs@batch-tamper");
  const auto messages = batch_messages();
  std::vector<ibc::DvSignature> sigs;
  for (const auto& m : messages) {
    sigs.push_back(ibc::dv_transform(g, ibc::ibs_sign(g, signer, m, rng), verifier.q_id));
  }

  for (const auto& bad : kCorruptionRows) {
    auto tampered = sigs;
    for (const std::size_t i : bad) {
      tampered[i].sigma = g.gt_mul(tampered[i].sigma, tampered[i].sigma);
    }
    std::vector<ibc::BatchEntry> entries;
    for (std::size_t i = 0; i < kBatchSize; ++i) {
      entries.push_back({signer.q_id, messages[i], &tampered[i]});
    }
    EXPECT_FALSE(ibc::dv_batch_verify(g, entries, verifier));
    ibc::BisectionStats stats;
    EXPECT_EQ(ibc::dv_batch_isolate(g, entries, verifier, &stats), bad)
        << bad.size() << " corruptions";
    EXPECT_LE(stats.max_depth, 5u);
  }
}

// --- cross-user rows ---------------------------------------------------------
// k Byzantine users inside one shared epoch batch: their entries must be
// isolated in 1+O(k·log n) pairings (one aggregate check plus bisection)
// while every honest user's audit in the same batch is still accepted — one
// bad actor cannot poison an epoch for its neighbors. Stale-commit replays
// are a separate row: filtered by the freshness high-water mark before the
// batch forms, at zero pairing cost.

constexpr std::size_t kFleetUsers = 12;
constexpr std::size_t kBlocksPerUser = 2;

const std::vector<std::vector<std::size_t>> kByzantineUserRows = {
    {2}, {1, 5}, {0, 3, 6, 9, 11}};

struct CrossUserFixture {
  const pairing::PairingGroup& g = tiny_group();
  Xoshiro256 rng{716};
  ibc::Sio sio{g, rng};
  ibc::IdentityKey da = sio.extract("agency@cross-user");
  ibc::IdentityKey cs = sio.extract("cs@cross-user");

  service::AuditService make_service() {
    service::ServiceConfig config;
    config.registry.shards = 4;
    config.epoch.batch_capacity = kFleetUsers * kBlocksPerUser;  // one shared batch
    config.threads = 1;
    return service::AuditService{g, da, cs, config};
  }
};

TEST(TamperMatrixTest, CrossUserByzantineSignersIsolatedInSharedBatch) {
  CrossUserFixture fx;
  for (const auto& bad : kByzantineUserRows) {
    service::AuditService svc = fx.make_service();
    service::VerdictLedger ledger;
    obs::JourneyRecorder journeys{{.sample_every = 1}};  // full-fidelity join
    svc.attach_ledger(&ledger);
    svc.attach_journeys(&journeys);
    sim::FleetWorkload fleet{fx.sio,
                             {.users = kFleetUsers,
                              .active_users = kFleetUsers,
                              .blocks_per_request = kBlocksPerUser,
                              .seed = 90 + bad.size()}};
    fleet.populate(svc);
    const auto is_bad = [&bad](std::size_t i) {
      return std::find(bad.begin(), bad.end(), i) != bad.end();
    };
    for (auto& r : fleet.make_requests(svc, [&](std::size_t i) {
           return is_bad(i) ? sim::FleetBehavior::kBadSignature
                            : sim::FleetBehavior::kHonest;
         })) {
      ASSERT_TRUE(svc.submit(std::move(r)).accepted);
    }

    const service::EpochReport report = svc.run_epoch();
    ASSERT_EQ(report.batches, 1u) << "all users share one batch";
    EXPECT_EQ(report.entries, kFleetUsers * kBlocksPerUser);

    // Exactly the Byzantine users' corrupted blocks are isolated.
    ASSERT_EQ(report.invalid_entries.size(), bad.size());
    std::vector<service::UserHandle> expected_users;
    for (const std::size_t i : bad) expected_users.push_back(fleet.handle(i));
    std::sort(expected_users.begin(), expected_users.end());
    EXPECT_EQ(report.byzantine_users, expected_users);
    for (const auto& inv : report.invalid_entries) {
      EXPECT_EQ(inv.block_index, 0u) << "the corrupted block, not its neighbor";
    }

    // Honest users' audits in the SAME batch are still accepted.
    EXPECT_EQ(report.verified_requests, kFleetUsers - bad.size());
    EXPECT_EQ(report.failed_requests, bad.size());
    for (std::size_t i = 0; i < kFleetUsers; ++i) {
      EXPECT_EQ(svc.registry().audited_version(fleet.handle(i)),
                is_bad(i) ? 0u : 1u);
    }

    // Cost: 1 attestation pairing + 1 aggregate pairing + bisection oracle
    // calls, bounded by k·2·(log2 n + 1) — far below one pairing per entry.
    const std::size_t n = kFleetUsers * kBlocksPerUser;
    const std::size_t log2n = 5;  // ceil(log2(24))
    const std::size_t bound = 1 + bad.size() * 2 * (log2n + 1);
    EXPECT_EQ(report.verify_ops.pairings, 2 + report.bisection.oracle_calls);
    EXPECT_LE(report.bisection.oracle_calls, bound);
    if (bound < n) {
      // Sparse-corruption regime: bisection must beat per-entry re-verify.
      EXPECT_LT(report.bisection.oracle_calls, n)
          << "bisection must beat per-entry re-verification";
    }

    // Forensics: every isolated Byzantine user must be attributable from
    // the ledger BYTES alone — user, epoch, batch, and a bisection path
    // that actually descends to the flagged entry. No report, no registry.
    const service::LedgerReplay forensics = service::replay_ledger(ledger.bytes());
    EXPECT_FALSE(forensics.torn_tail);
    EXPECT_EQ(forensics.malformed_payloads, 0u);
    ASSERT_EQ(forensics.entries.size(), n) << "one record per audited entry";
    std::vector<service::UserHandle> flagged;
    for (const auto& entry : forensics.entries) {
      if (entry.verdict == service::LedgerVerdict::kVerified) continue;
      ASSERT_EQ(entry.verdict, service::LedgerVerdict::kInvalidSignature);
      flagged.push_back(entry.user);
      EXPECT_EQ(entry.epoch, report.epoch);
      EXPECT_EQ(entry.batch, 0u) << "the one shared batch";
      EXPECT_EQ(entry.block_index, 0u);
      // The recorded descent must land exactly on the flagged entry's slot.
      std::size_t lo = 0;
      std::size_t hi = n;
      for (std::uint8_t level = 0; level < entry.isolation_depth; ++level) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if ((entry.isolation_path >> level & 1u) != 0) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      EXPECT_EQ(lo, entry.entry_in_batch) << "path must isolate the entry";
      EXPECT_EQ(hi, lo + 1) << "path must descend to a single entry";
      EXPECT_EQ(entry.batch_pairings, 2 + report.bisection.oracle_calls);
    }
    std::sort(flagged.begin(), flagged.end());
    EXPECT_EQ(flagged, expected_users)
        << "the ledger attributes exactly the Byzantine users";

    // Journey↔ledger coherence: with full sampling, every ledger record
    // links to a journey whose verdict agrees with the entry's, and a
    // bisected journey's recorded depth is the deepest descent the ledger
    // took over that request's own entries — the waterfall and the forensic
    // paths tell one story.
    const obs::JourneyReplay trail = obs::replay_journeys(journeys.stream());
    EXPECT_FALSE(trail.torn_tail);
    ASSERT_EQ(trail.records.size(), kFleetUsers) << "one journey per request";
    std::map<std::uint64_t, const obs::JourneyRecord*> by_id;
    for (const obs::JourneyRecord& j : trail.records) by_id[j.request_id] = &j;
    std::map<std::uint32_t, std::uint8_t> deepest;  // request_index → max depth
    for (const auto& entry : forensics.entries) {
      deepest[entry.request_index] =
          std::max(deepest[entry.request_index], entry.isolation_depth);
    }
    for (const auto& entry : forensics.entries) {
      ASSERT_NE(entry.journey_id, 0u) << "full sampling: every entry joins";
      const auto it = by_id.find(entry.journey_id);
      ASSERT_NE(it, by_id.end());
      const obs::JourneyRecord& j = *it->second;
      EXPECT_EQ(j.user, entry.user);
      EXPECT_EQ(j.request_index, entry.request_index);
      if (entry.verdict == service::LedgerVerdict::kInvalidSignature) {
        EXPECT_EQ(j.verdict, obs::JourneyVerdict::kInvalidSignature);
        EXPECT_TRUE(j.sampled & obs::kJourneySampledBisected);
        EXPECT_EQ(j.bisection_depth, deepest.at(entry.request_index))
            << "journey depth = deepest descent over the request's entries";
        EXPECT_GT(j.stage_us[static_cast<std::size_t>(obs::JourneyStage::kBisect)], 0u)
            << "an isolated request must carry bisection time";
      } else if (deepest.at(entry.request_index) == 0) {
        EXPECT_EQ(j.verdict, obs::JourneyVerdict::kVerified);
        EXPECT_EQ(j.bisection_depth, 0u);
      }
    }
  }
}

TEST(TamperMatrixTest, CrossUserStaleReplayFilteredBeforeTheBatch) {
  CrossUserFixture fx;
  service::AuditService svc = fx.make_service();
  sim::FleetWorkload fleet{fx.sio,
                           {.users = kFleetUsers,
                            .active_users = kFleetUsers,
                            .blocks_per_request = kBlocksPerUser,
                            .seed = 99}};
  fleet.populate(svc);
  // Round 1: everyone honest, all audits recorded.
  for (auto& r : fleet.make_requests(svc)) svc.submit(std::move(r));
  ASSERT_EQ(svc.run_epoch().verified_requests, kFleetUsers);

  // Round 2: users {1, 4, 7} replay their already-audited commits (validly
  // signed!) inside the shared batch window.
  const std::vector<std::size_t> replayers = {1, 4, 7};
  for (auto& r : fleet.make_requests(svc, [&](std::size_t i) {
         return std::find(replayers.begin(), replayers.end(), i) != replayers.end()
                    ? sim::FleetBehavior::kStaleReplay
                    : sim::FleetBehavior::kHonest;
       })) {
    svc.submit(std::move(r));
  }
  const service::EpochReport report = svc.run_epoch();
  EXPECT_EQ(report.stale_rejected, replayers.size());
  EXPECT_EQ(report.verified_requests, kFleetUsers - replayers.size());
  // The replays never reached the batch: no extra entries, no bisection, and
  // the clean batch still costs exactly 2 pairings.
  EXPECT_EQ(report.entries, (kFleetUsers - replayers.size()) * kBlocksPerUser);
  EXPECT_EQ(report.bisection.oracle_calls, 0u);
  EXPECT_EQ(report.verify_ops.pairings, 2 * report.batches);
  EXPECT_TRUE(report.byzantine_users.empty());
  // Replayed versions did not advance anyone's high-water mark.
  for (const std::size_t i : replayers) {
    EXPECT_EQ(svc.registry().audited_version(fleet.handle(i)), 1u);
  }
}

}  // namespace
}  // namespace seccloud
