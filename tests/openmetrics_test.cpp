// OpenMetrics exposition tests: name sanitization and collision dedup, HELP
// escaping, counter/gauge/histogram sample layout (cumulative buckets, +Inf,
// _sum/_count, trailing # EOF), and value fidelity against the JSON snapshot
// of the same registry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace seccloud::obs {
namespace {

TEST(OpenMetricsName, SanitizesIllegalCharacters) {
  EXPECT_EQ(openmetrics_sanitize_name("pairing.pairings"), "pairing_pairings");
  EXPECT_EQ(openmetrics_sanitize_name("engine.pool.task_ms"), "engine_pool_task_ms");
  EXPECT_EQ(openmetrics_sanitize_name("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(openmetrics_sanitize_name("ns:sub"), "ns:sub");  // colons are legal
}

TEST(OpenMetricsName, FirstCharacterMayNotBeADigit) {
  EXPECT_EQ(openmetrics_sanitize_name("9lives"), "_lives");
  EXPECT_EQ(openmetrics_sanitize_name("x9"), "x9");
  EXPECT_EQ(openmetrics_sanitize_name(""), "_");
}

TEST(OpenMetricsEscape, EscapesHelpText) {
  EXPECT_EQ(openmetrics_escape("plain"), "plain");
  EXPECT_EQ(openmetrics_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(openmetrics_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(openmetrics_escape("line1\nline2"), "line1\\nline2");
}

TEST(OpenMetrics, CounterLayout) {
  MetricsRegistry registry;
  registry.counter("audit.rounds").inc(7);
  const std::string text = metrics_to_openmetrics(registry.snapshot());
  EXPECT_NE(text.find("# HELP seccloud_audit_rounds "), std::string::npos);
  EXPECT_NE(text.find("# TYPE seccloud_audit_rounds counter\n"), std::string::npos);
  EXPECT_NE(text.find("seccloud_audit_rounds_total 7\n"), std::string::npos);
  // The exposition must end with the OpenMetrics terminator.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, CustomNamespace) {
  MetricsRegistry registry;
  registry.counter("x").inc();
  const std::string text = metrics_to_openmetrics(registry.snapshot(), "myapp");
  EXPECT_NE(text.find("myapp_x_total 1\n"), std::string::npos);
  // No sample may carry the default namespace (the HELP boilerplate still
  // says "seccloud metric", which is fine — it names the producer).
  EXPECT_EQ(text.find("seccloud_"), std::string::npos);
}

TEST(OpenMetrics, GaugeEmitsValueAndHighWaterMark) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("pool.queue_depth");
  gauge.set(9);
  gauge.set(4);
  const std::string text = metrics_to_openmetrics(registry.snapshot());
  EXPECT_NE(text.find("# TYPE seccloud_pool_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("seccloud_pool_queue_depth 4\n"), std::string::npos);
  EXPECT_NE(text.find("seccloud_pool_queue_depth_max 9\n"), std::string::npos);
}

TEST(OpenMetrics, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  const double edges[] = {1.0, 10.0, 100.0};
  Histogram& hist = registry.histogram("latency_ms", edges);
  hist.observe(0.5);   // bucket le=1
  hist.observe(0.7);   // bucket le=1
  hist.observe(5.0);   // bucket le=10
  hist.observe(500.0); // overflow: only +Inf
  const std::string text = metrics_to_openmetrics(registry.snapshot());
  EXPECT_NE(text.find("# TYPE seccloud_latency_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("seccloud_latency_ms_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("seccloud_latency_ms_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("seccloud_latency_ms_bucket{le=\"100\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("seccloud_latency_ms_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("seccloud_latency_ms_count 4\n"), std::string::npos);
  // _sum: 0.5 + 0.7 + 5 + 500 = 506.2
  EXPECT_NE(text.find("seccloud_latency_ms_sum 506.2\n"), std::string::npos);
}

TEST(OpenMetrics, ExemplarSuffixLinksBucketsToJourneys) {
  MetricsRegistry registry;
  const double edges[] = {1.0, 10.0};
  Histogram& hist = registry.histogram("epoch_ms", edges);
  hist.enable_exemplars();
  hist.observe(0.5);  // no context: bucket counts, no exemplar
  {
    ExemplarScope scope{4242, 9};
    hist.observe(5.0);    // bucket le=10
    hist.observe(500.0);  // overflow: exemplar rides the +Inf line
  }
  const std::string text = metrics_to_openmetrics(registry.snapshot());
  // OpenMetrics exemplar syntax: `... # {label="v",...} value` appended to
  // the bucket the observation landed in.
  EXPECT_NE(text.find("seccloud_epoch_ms_bucket{le=\"1\"} 1\n"), std::string::npos)
      << "context-free bucket stays bare: " << text;
  EXPECT_NE(text.find("seccloud_epoch_ms_bucket{le=\"10\"} 2 "
                      "# {request_id=\"4242\",epoch=\"9\"} 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("seccloud_epoch_ms_bucket{le=\"+Inf\"} 3 "
                      "# {request_id=\"4242\",epoch=\"9\"} 500\n"),
            std::string::npos)
      << text;
}

TEST(OpenMetrics, CollidingSanitizedNamesAreDeduplicated) {
  MetricsRegistry registry;
  registry.counter("a.b").inc(1);
  registry.counter("a_b").inc(2);
  const std::string text = metrics_to_openmetrics(registry.snapshot());
  // Map iteration order: "a.b" < "a_b", so the dotted name keeps the plain
  // sanitized form and the underscore one gets the suffix.
  EXPECT_NE(text.find("seccloud_a_b_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("seccloud_a_b_2_total 2\n"), std::string::npos);
}

/// Parses every "<name> <value>" sample line (ignoring # comments and
/// labeled bucket lines) into a map for fidelity checks.
std::map<std::string, double> parse_samples(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    if (name.find('{') != std::string::npos) continue;  // bucket lines
    out[name] = std::strtod(line.c_str() + space + 1, nullptr);
  }
  return out;
}

TEST(OpenMetrics, ValuesMatchTheJsonSnapshotOfTheSameRegistry) {
  MetricsRegistry registry;
  registry.counter("pairing.pairings").inc(1234);
  registry.counter("pool.tasks").inc(17);
  registry.gauge("pool.queue_depth").set(3);
  const double edges[] = {10.0, 20.0};
  registry.histogram("verify_ms", edges).observe(12.5);
  const MetricsSnapshot snap = registry.snapshot();

  // Same snapshot, both expositions: every counter/gauge value in the
  // OpenMetrics text must equal the JSON's (metrics_to_json is the format
  // BENCH_*.json embeds; the .prom file must never disagree with it).
  const std::map<std::string, double> samples =
      parse_samples(metrics_to_openmetrics(snap));
  for (const auto& [name, value] : snap.counters) {
    const std::string om = "seccloud_" + openmetrics_sanitize_name(name) + "_total";
    ASSERT_TRUE(samples.count(om)) << om;
    EXPECT_EQ(samples.at(om), static_cast<double>(value)) << om;
  }
  for (const auto& [name, gauge] : snap.gauges) {
    const std::string om = "seccloud_" + openmetrics_sanitize_name(name);
    ASSERT_TRUE(samples.count(om)) << om;
    EXPECT_EQ(samples.at(om), static_cast<double>(gauge.value)) << om;
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string om = "seccloud_" + openmetrics_sanitize_name(name);
    ASSERT_TRUE(samples.count(om + "_count")) << om;
    EXPECT_EQ(samples.at(om + "_count"), static_cast<double>(hist.count));
    EXPECT_EQ(samples.at(om + "_sum"), hist.sum);
  }
  // And the JSON side really contains what we compared against.
  const std::string json = metrics_to_json(snap);
  EXPECT_NE(json.find("\"pairing.pairings\":1234"), std::string::npos);
}

TEST(OpenMetrics, EmptySnapshotIsJustTheTerminator) {
  EXPECT_EQ(metrics_to_openmetrics(MetricsSnapshot{}), "# EOF\n");
}

}  // namespace
}  // namespace seccloud::obs
