// Baseline-scheme tests: RSA-FDH, ECDSA/P-256, BGLS aggregate signatures,
// and the Wang-et-al.-style public auditing comparator.
#include <gtest/gtest.h>

#include "baselines/bgls.h"
#include "baselines/ecdsa.h"
#include "baselines/rsa.h"
#include "baselines/wang_auditing.h"
#include "hash/hash_to.h"

namespace seccloud::baselines {
namespace {

using hash::as_bytes;
using num::BigUint;
using num::Xoshiro256;
using pairing::tiny_group;

// --- RSA ----------------------------------------------------------------

class RsaTest : public ::testing::Test {
 protected:
  RsaTest() : rng(101), key(rsa_generate(512, rng)) {}
  Xoshiro256 rng;
  RsaKeyPair key;
};

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const auto msg = as_bytes(std::string_view{"pay bob 100"});
  const BigUint sig = rsa_sign(key, msg);
  EXPECT_TRUE(rsa_verify(key.n, key.e, msg, sig));
}

TEST_F(RsaTest, RejectsWrongMessage) {
  const BigUint sig = rsa_sign(key, as_bytes(std::string_view{"m1"}));
  EXPECT_FALSE(rsa_verify(key.n, key.e, as_bytes(std::string_view{"m2"}), sig));
}

TEST_F(RsaTest, RejectsTamperedSignature) {
  const auto msg = as_bytes(std::string_view{"m"});
  BigUint sig = rsa_sign(key, msg);
  sig += 1u;
  EXPECT_FALSE(rsa_verify(key.n, key.e, msg, sig));
  EXPECT_FALSE(rsa_verify(key.n, key.e, msg, key.n + BigUint{1}));  // out of range
}

TEST_F(RsaTest, KeyInvariants) {
  EXPECT_EQ(key.n.bit_length(), 512u);
  // e·d ≡ 1 (mod λ | φ): check via a random message exponentiation identity.
  const BigUint x{123456789};
  EXPECT_EQ(num::pow_mod(num::pow_mod(x, key.d, key.n), key.e, key.n), x % key.n);
}

TEST(Rsa, GenerateRejectsTinyModulus) {
  Xoshiro256 rng{1};
  EXPECT_THROW(rsa_generate(32, rng), std::invalid_argument);
}

// --- ECDSA ---------------------------------------------------------------

class EcdsaTest : public ::testing::Test {
 protected:
  EcdsaTest() : rng(202), key(ecdsa_generate(curve, rng)) {}
  ec::P256 curve;
  Xoshiro256 rng;
  EcdsaKeyPair key;
};

TEST_F(EcdsaTest, SignVerifyRoundTrip) {
  const auto msg = as_bytes(std::string_view{"transfer 42"});
  const EcdsaSignature sig = ecdsa_sign(curve, key, msg, rng);
  EXPECT_TRUE(ecdsa_verify(curve, key.q, msg, sig));
}

TEST_F(EcdsaTest, RejectsWrongMessageKeyOrTamper) {
  const auto msg = as_bytes(std::string_view{"m"});
  const EcdsaSignature sig = ecdsa_sign(curve, key, msg, rng);
  EXPECT_FALSE(ecdsa_verify(curve, key.q, as_bytes(std::string_view{"n"}), sig));

  const EcdsaKeyPair other = ecdsa_generate(curve, rng);
  EXPECT_FALSE(ecdsa_verify(curve, other.q, msg, sig));

  EcdsaSignature bad = sig;
  bad.s += 1u;
  if (bad.s >= curve.order()) bad.s -= curve.order();
  EXPECT_FALSE(ecdsa_verify(curve, key.q, msg, bad));
}

TEST_F(EcdsaTest, RejectsDegenerateComponents) {
  const auto msg = as_bytes(std::string_view{"m"});
  EXPECT_FALSE(ecdsa_verify(curve, key.q, msg, {BigUint{}, BigUint{1}}));
  EXPECT_FALSE(ecdsa_verify(curve, key.q, msg, {BigUint{1}, BigUint{}}));
  EXPECT_FALSE(ecdsa_verify(curve, key.q, msg, {curve.order(), BigUint{1}}));
}

TEST_F(EcdsaTest, SignaturesAreRandomized) {
  const auto msg = as_bytes(std::string_view{"m"});
  const EcdsaSignature s1 = ecdsa_sign(curve, key, msg, rng);
  const EcdsaSignature s2 = ecdsa_sign(curve, key, msg, rng);
  EXPECT_NE(s1.r, s2.r);
}

// --- BGLS ------------------------------------------------------------------

class BglsTest : public ::testing::Test {
 protected:
  BglsTest() : g(tiny_group()), rng(303) {}
  const pairing::PairingGroup& g;
  Xoshiro256 rng;
};

TEST_F(BglsTest, SignVerifyRoundTrip) {
  const BglsKeyPair key = bgls_generate(g, rng);
  const auto msg = as_bytes(std::string_view{"hello"});
  const auto sig = bgls_sign(g, key, msg);
  EXPECT_TRUE(bgls_verify(g, key.v, msg, sig));
  EXPECT_FALSE(bgls_verify(g, key.v, as_bytes(std::string_view{"bye"}), sig));
}

TEST_F(BglsTest, AggregateOfDistinctSignersVerifies) {
  std::vector<BglsKeyPair> keys;
  std::vector<std::string> messages;
  std::vector<pairing::Point> sigs;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(bgls_generate(g, rng));
    messages.push_back("msg-" + std::to_string(i));
    sigs.push_back(bgls_sign(g, keys.back(), as_bytes(messages.back())));
  }
  const auto aggregate = bgls_aggregate(g, sigs);
  std::vector<BglsItem> items;
  for (int i = 0; i < 6; ++i) {
    items.push_back({keys[static_cast<std::size_t>(i)].v,
                     as_bytes(messages[static_cast<std::size_t>(i)])});
  }
  EXPECT_TRUE(bgls_aggregate_verify(g, items, aggregate));
}

TEST_F(BglsTest, AggregateRejectsForgedComponent) {
  std::vector<BglsKeyPair> keys;
  std::vector<std::string> messages;
  std::vector<pairing::Point> sigs;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(bgls_generate(g, rng));
    messages.push_back("w-" + std::to_string(i));
    sigs.push_back(bgls_sign(g, keys.back(), as_bytes(messages.back())));
  }
  sigs[2] = g.add(sigs[2], g.generator());  // tamper one component
  const auto aggregate = bgls_aggregate(g, sigs);
  std::vector<BglsItem> items;
  for (int i = 0; i < 4; ++i) {
    items.push_back({keys[static_cast<std::size_t>(i)].v,
                     as_bytes(messages[static_cast<std::size_t>(i)])});
  }
  EXPECT_FALSE(bgls_aggregate_verify(g, items, aggregate));
}

TEST_F(BglsTest, AggregateRejectsDuplicateMessages) {
  const BglsKeyPair k1 = bgls_generate(g, rng);
  const BglsKeyPair k2 = bgls_generate(g, rng);
  const auto msg = as_bytes(std::string_view{"same"});
  const auto aggregate =
      bgls_aggregate(g, std::vector{bgls_sign(g, k1, msg), bgls_sign(g, k2, msg)});
  const std::vector<BglsItem> items{{k1.v, msg}, {k2.v, msg}};
  EXPECT_FALSE(bgls_aggregate_verify(g, items, aggregate));
}

TEST_F(BglsTest, AggregateVerifyPairingCount) {
  // Table II: BGLS aggregate verification = n+1 Miller loops.
  std::vector<BglsKeyPair> keys;
  std::vector<std::string> messages;
  std::vector<pairing::Point> sigs;
  const std::size_t n = 8;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(bgls_generate(g, rng));
    messages.push_back("c-" + std::to_string(i));
    sigs.push_back(bgls_sign(g, keys.back(), as_bytes(messages.back())));
  }
  const auto aggregate = bgls_aggregate(g, sigs);
  std::vector<BglsItem> items;
  for (std::size_t i = 0; i < n; ++i) items.push_back({keys[i].v, as_bytes(messages[i])});
  g.reset_counters();
  EXPECT_TRUE(bgls_aggregate_verify(g, items, aggregate));
  EXPECT_EQ(g.counters().miller_loops, n + 1);
}

// --- Wang et al. auditing ----------------------------------------------------

class WangTest : public ::testing::Test {
 protected:
  WangTest() : g(tiny_group()), scheme(g), rng(404) {
    key = scheme.keygen("file-1", rng);
    for (std::uint64_t i = 0; i < 32; ++i) {
      blocks.push_back(BigUint{1000 + i * 17});
      tags.push_back(scheme.tag_block(key, i, blocks.back()));
    }
  }
  const pairing::PairingGroup& g;
  WangScheme scheme;
  Xoshiro256 rng;
  WangUserKey key;
  std::vector<BigUint> blocks;
  std::vector<pairing::Point> tags;
};

TEST_F(WangTest, HonestProofVerifies) {
  const auto challenge = scheme.make_challenge(32, 10, rng);
  const auto proof = scheme.prove(challenge, blocks, tags);
  EXPECT_TRUE(scheme.verify(scheme.public_info(key), challenge, proof));
}

TEST_F(WangTest, ModifiedBlockFailsProof) {
  const auto challenge = scheme.make_challenge(32, 32, rng);  // hit everything
  auto corrupt = blocks;
  corrupt[5] += 1u;
  const auto proof = scheme.prove(challenge, corrupt, tags);
  EXPECT_FALSE(scheme.verify(scheme.public_info(key), challenge, proof));
}

TEST_F(WangTest, WrongTagFailsProof) {
  const auto challenge = scheme.make_challenge(32, 32, rng);
  auto bad_tags = tags;
  bad_tags[7] = g.add(bad_tags[7], g.generator());
  const auto proof = scheme.prove(challenge, blocks, bad_tags);
  EXPECT_FALSE(scheme.verify(scheme.public_info(key), challenge, proof));
}

TEST_F(WangTest, VerificationCostsTwoPairingsPerUser) {
  const auto challenge = scheme.make_challenge(32, 10, rng);
  const auto proof = scheme.prove(challenge, blocks, tags);
  g.reset_counters();
  EXPECT_TRUE(scheme.verify(scheme.public_info(key), challenge, proof));
  EXPECT_EQ(g.counters().pairings, 2u);
}

TEST_F(WangTest, ChallengeOutOfRangeThrows) {
  std::vector<WangChallengeItem> challenge{{100, BigUint{1}}};
  EXPECT_THROW(scheme.prove(challenge, blocks, tags), std::out_of_range);
}

}  // namespace
}  // namespace seccloud::baselines
