// Telemetry pipeline: the framed record codec (round-trip + every-byte
// truncation sweep), EpochSnapshot JSON round-trip, the sink's counter-delta
// capture against a hand-computed registry diff, the bounded ring, and the
// SLO tracker's multi-window burn-rate math on a deterministic epoch clock.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/telemetry.h"

namespace seccloud::obs {
namespace {

TelemetryRecord sample_record(std::uint32_t seq = 0) {
  TelemetryRecord r;
  r.type = TelemetryRecordType::kEpochSnapshot;
  r.stream_id = 7;
  r.seq = seq;
  r.payload = {0x01, 0x02, 0x03, 0xff, 0x00, 0x7f};
  return r;
}

EpochSnapshot sample_snapshot(std::uint64_t epoch = 3) {
  EpochSnapshot s;
  s.epoch = epoch;
  s.epoch_ms = 123.5;
  s.telemetry_ms = 0.25;
  s.requests = 64;
  s.stale_rejected = 1;
  s.unkeyed_rejected = 2;
  s.entries = 128;
  s.batches = 4;
  s.verified_requests = 60;
  s.failed_requests = 4;
  s.byzantine_users = 1;
  s.assembly_pairings = 8;
  s.verify_pairings = 11;
  s.pairings_per_batch = 2.75;
  s.bisection_oracle_calls = 3;
  s.bisection_max_depth = 5;
  s.queue_depth_at_drain = 64;
  s.queue_admitted = 70;
  s.queue_rejected = 6;
  s.retry_after_epochs = 2;
  s.shards = {{100, 10, 256, 4, 120}, {90, 8, 128, 7, 200}};
  s.counter_deltas = {{"service.epochs", 1}, {"fleet.requests", 64}};
  return s;
}

// --- record codec -----------------------------------------------------------

TEST(TelemetryCodec, RecordRoundTrips) {
  const TelemetryRecord record = sample_record(42);
  const auto bytes = encode_telemetry_record(record);
  std::size_t consumed = 0;
  const auto decoded = decode_telemetry_record(bytes, &consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, record);
  EXPECT_EQ(consumed, bytes.size());
}

TEST(TelemetryCodec, EmptyPayloadRoundTrips) {
  TelemetryRecord record;
  record.type = TelemetryRecordType::kSloAlert;
  const auto bytes = encode_telemetry_record(record);
  const auto decoded = decode_telemetry_record(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(TelemetryCodec, EveryTruncationPointIsATornTailNeverAPartialRecord) {
  // Three records back to back; cutting the stream at EVERY byte offset must
  // replay only whole records and flag the tear — the PR-4 crash-sweep
  // discipline applied to the telemetry stream.
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto bytes = encode_telemetry_record(sample_record(i));
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  const std::size_t record_size = stream.size() / 3;
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    const TelemetryReplay replay =
        replay_telemetry(std::span{stream.data(), cut});
    EXPECT_EQ(replay.records.size(), cut / record_size) << "cut=" << cut;
    EXPECT_EQ(replay.clean_bytes, (cut / record_size) * record_size);
    EXPECT_EQ(replay.torn_tail, cut % record_size != 0) << "cut=" << cut;
    for (std::size_t i = 0; i < replay.records.size(); ++i) {
      EXPECT_EQ(replay.records[i].seq, i);
    }
  }
}

TEST(TelemetryCodec, CorruptionAnywhereKillsTheRecordNotThePrefix) {
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 2; ++i) {
    const auto bytes = encode_telemetry_record(sample_record(i));
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  const std::size_t record_size = stream.size() / 2;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    std::vector<std::uint8_t> corrupt = stream;
    corrupt[i] ^= 0x01;
    const TelemetryReplay replay = replay_telemetry(corrupt);
    // Flipping a bit in record k invalidates k and everything after; the
    // records before it must survive untouched. (A flipped length field may
    // also shift framing — the replay must still never emit a bad record.)
    EXPECT_LE(replay.records.size(), 1u) << "flip at byte " << i;
    if (i >= record_size) {
      EXPECT_EQ(replay.records.size(), 1u) << "flip at byte " << i;
      EXPECT_EQ(replay.records[0], sample_record(0));
    }
    EXPECT_TRUE(replay.torn_tail);
  }
}

TEST(TelemetryCodec, RejectsForeignMagic) {
  auto bytes = encode_telemetry_record(sample_record());
  bytes[0] = 'S';
  bytes[1] = 'J';  // session-journal magic: framing twin, different stream
  EXPECT_FALSE(decode_telemetry_record(bytes).has_value());
}

// --- snapshot JSON ----------------------------------------------------------

TEST(EpochSnapshotJson, RoundTripsEveryField) {
  const EpochSnapshot snap = sample_snapshot();
  const auto decoded = EpochSnapshot::from_json(snap.to_json());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, snap);
}

TEST(EpochSnapshotJson, DefaultSnapshotRoundTrips) {
  const EpochSnapshot snap;
  const auto decoded = EpochSnapshot::from_json(snap.to_json());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, snap);
}

TEST(EpochSnapshotJson, RejectsGarbage) {
  EXPECT_FALSE(EpochSnapshot::from_json("").has_value());
  EXPECT_FALSE(EpochSnapshot::from_json("not json").has_value());
  EXPECT_FALSE(EpochSnapshot::from_json("[1,2,3]").has_value());
}

// --- sink -------------------------------------------------------------------

TEST(TelemetrySink, CounterDeltasMatchAHandComputedRegistryDiff) {
  MetricsRegistry registry;
  registry.counter("a").inc(10);
  registry.counter("b").inc(5);

  TelemetrySink sink{registry};  // baseline: a=10, b=5

  registry.counter("a").inc(7);
  registry.counter("c").inc(3);
  sink.capture(sample_snapshot(0));

  // Hand-computed diff vs the construction baseline: a 10→17, b 5→5 (zero
  // deltas are omitted), c 0→3.
  const std::map<std::string, std::uint64_t> expected1 = {{"a", 7}, {"c", 3}};
  ASSERT_EQ(sink.ring().size(), 1u);
  EXPECT_EQ(sink.ring().back().counter_deltas, expected1);

  registry.counter("b").inc(1);
  sink.capture(sample_snapshot(1));
  const std::map<std::string, std::uint64_t> expected2 = {{"b", 1}};
  EXPECT_EQ(sink.ring().back().counter_deltas, expected2);

  // The stream holds both snapshots, replayable with the deltas intact.
  const TelemetryReplay replay = replay_telemetry(sink.stream());
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 2u);
  const auto snap0 = EpochSnapshot::from_json(std::string(
      replay.records[0].payload.begin(), replay.records[0].payload.end()));
  ASSERT_TRUE(snap0.has_value());
  EXPECT_EQ(snap0->counter_deltas, expected1);
}

TEST(TelemetrySink, RingIsBoundedStreamIsNot) {
  MetricsRegistry registry;
  TelemetrySink sink{registry, {.ring_capacity = 4, .stream_id = 9}};
  for (std::uint64_t e = 0; e < 10; ++e) sink.capture(sample_snapshot(e));

  ASSERT_EQ(sink.ring().size(), 4u) << "ring evicts past capacity";
  EXPECT_EQ(sink.ring().front().epoch, 6u);
  EXPECT_EQ(sink.ring().back().epoch, 9u);

  const TelemetryReplay replay = replay_telemetry(sink.stream());
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 10u) << "stream keeps everything";
  EXPECT_EQ(sink.records(), 10u);
  for (std::size_t i = 0; i < replay.records.size(); ++i) {
    EXPECT_EQ(replay.records[i].seq, i);
    EXPECT_EQ(replay.records[i].stream_id, 9u);
  }
}

TEST(TelemetrySink, AlertsInterleaveWithSnapshotsInStreamOrder) {
  MetricsRegistry registry;
  TelemetrySink sink{registry};
  sink.capture(sample_snapshot(0));
  SloAlert alert{.slo = "rejects", .epoch = 0, .firing = true, .burn = 10.0,
                 .window_epochs = 4};
  sink.alert(alert);
  sink.capture(sample_snapshot(1));

  const TelemetryReplay replay = replay_telemetry(sink.stream());
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].type, TelemetryRecordType::kEpochSnapshot);
  EXPECT_EQ(replay.records[1].type, TelemetryRecordType::kSloAlert);
  EXPECT_EQ(replay.records[2].type, TelemetryRecordType::kEpochSnapshot);

  const auto decoded = SloAlert::from_json(std::string(
      replay.records[1].payload.begin(), replay.records[1].payload.end()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, alert);
}

// --- SLO tracker ------------------------------------------------------------

TEST(SloTracker, BurnRateIsBadFractionOverBudget) {
  SloTracker slo;
  slo.add({.name = "rejects", .error_budget = 0.1, .windows = {{4, 1.0}}});
  slo.observe("rejects", 0, {.good = 80, .bad = 20});  // bad fraction 0.2
  EXPECT_DOUBLE_EQ(slo.burn_rate("rejects", 1), 2.0);
  EXPECT_DOUBLE_EQ(slo.burn_rate("rejects", 4), 2.0) << "partial history";
  EXPECT_DOUBLE_EQ(slo.burn_rate("unknown", 1), 0.0);
}

TEST(SloTracker, WindowBoundaryMathIsExact) {
  // Budget 0.1; one fully bad epoch then clean epochs. The trailing-window
  // burn must be exactly (bad samples in window)/(total in window)/budget,
  // and the bad epoch must leave the window precisely when it ages out.
  SloTracker slo;
  slo.add({.name = "x", .error_budget = 0.1, .windows = {{2, 1.0}, {4, 1.0}}});
  slo.observe("x", 0, {.good = 0, .bad = 100});
  slo.observe("x", 1, {.good = 100, .bad = 0});
  // window=2 covers epochs {0,1}: bad fraction 100/200 = 0.5 → burn 5.
  EXPECT_DOUBLE_EQ(slo.burn_rate("x", 2), 5.0);
  slo.observe("x", 2, {.good = 100, .bad = 0});
  // window=2 covers {1,2}: clean → burn 0. window=4 still sees epoch 0.
  EXPECT_DOUBLE_EQ(slo.burn_rate("x", 2), 0.0);
  EXPECT_DOUBLE_EQ(slo.burn_rate("x", 4), 100.0 / 300.0 / 0.1);
  slo.observe("x", 3, {.good = 100, .bad = 0});
  slo.observe("x", 4, {.good = 100, .bad = 0});
  // Epoch 0 aged out of the 4-window: {1,2,3,4} are clean.
  EXPECT_DOUBLE_EQ(slo.burn_rate("x", 4), 0.0);
}

TEST(SloTracker, FiresOnlyWhenAllWindowsExceedAndEmitsTransitionsOnce) {
  SloTracker slo;
  slo.add({.name = "x", .error_budget = 0.05, .windows = {{1, 2.0}, {3, 1.0}}});

  // Epoch 0: disaster. Short window burns 10, long window burns 10 → fire.
  slo.observe("x", 0, {.good = 50, .bad = 50});
  auto alerts = slo.evaluate(0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].slo, "x");
  EXPECT_TRUE(alerts[0].firing);
  EXPECT_EQ(alerts[0].epoch, 0u);
  EXPECT_GT(alerts[0].burn, 2.0);
  EXPECT_TRUE(slo.firing("x"));

  // Epoch 1: still bad. State unchanged → NO new alert (transitions only).
  slo.observe("x", 1, {.good = 50, .bad = 50});
  EXPECT_TRUE(slo.evaluate(1).empty());

  // Epoch 2: clean epoch. The 1-epoch window stops exceeding → resolve,
  // even though the 3-epoch window still burns (the fast window vetoes).
  slo.observe("x", 2, {.good = 100, .bad = 0});
  alerts = slo.evaluate(2);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_FALSE(alerts[0].firing);
  EXPECT_EQ(alerts[0].epoch, 2u);
  EXPECT_FALSE(slo.firing("x"));

  // Epoch 3: clean again, steady state → nothing.
  slo.observe("x", 3, {.good = 100, .bad = 0});
  EXPECT_TRUE(slo.evaluate(3).empty());
}

TEST(SloTracker, ExactInvariantObjectiveFiresOnAnyViolation) {
  // The pairings-per-clean-batch == 2 invariant: near-zero budget, single
  // 1-epoch window — one bad batch anywhere fires the same epoch.
  SloTracker slo;
  slo.add({.name = "ppb", .error_budget = 1e-6, .windows = {{1, 1.0}}});
  slo.observe("ppb", 0, {.good = 1000, .bad = 0});
  EXPECT_TRUE(slo.evaluate(0).empty());
  slo.observe("ppb", 1, {.good = 999, .bad = 1});
  const auto alerts = slo.evaluate(1);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].firing);
}

TEST(SloTracker, AlertJsonRoundTrips) {
  const SloAlert alert{.slo = "epoch_latency", .epoch = 17, .firing = true,
                       .burn = 3.25, .window_epochs = 8};
  const auto decoded = SloAlert::from_json(alert.to_json());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, alert);
  EXPECT_FALSE(SloAlert::from_json("{}").has_value())
      << "an alert without an objective name is meaningless";
}

}  // namespace
}  // namespace seccloud::obs
