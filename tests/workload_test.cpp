// Workload-generator and adversary-campaign tests.
#include <gtest/gtest.h>

#include <unordered_set>

#include "seccloud/server.h"
#include "sim/adversary.h"
#include "sim/workload.h"

namespace seccloud::sim {
namespace {

using core::FuncKind;
using pairing::tiny_group;

bool task_positions_in_range(const Workload& w) {
  for (const auto& request : w.task.requests) {
    for (const auto pos : request.positions) {
      if (pos >= w.blocks.size()) return false;
    }
  }
  return true;
}

TEST(Workload, LogAnalyticsShape) {
  const Workload w = make_log_analytics_workload(100, 10, 7);
  EXPECT_EQ(w.blocks.size(), 100u);
  EXPECT_EQ(w.task.requests.size(), 20u);  // avg + max per window
  EXPECT_TRUE(task_positions_in_range(w));
  // Windows alternate average and max.
  EXPECT_EQ(w.task.requests[0].kind, FuncKind::kAverage);
  EXPECT_EQ(w.task.requests[1].kind, FuncKind::kMax);
}

TEST(Workload, LogAnalyticsDeterministicInSeed) {
  const Workload a = make_log_analytics_workload(50, 5, 9);
  const Workload b = make_log_analytics_workload(50, 5, 9);
  const Workload c = make_log_analytics_workload(50, 5, 10);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_NE(a.blocks, c.blocks);
}

TEST(Workload, ShardAggregationReducesAcrossShards) {
  const Workload w = make_shard_aggregation_workload(4, 8, 3);
  EXPECT_EQ(w.blocks.size(), 32u);
  EXPECT_EQ(w.task.requests.size(), 8u);  // one reduce per key
  for (const auto& request : w.task.requests) {
    EXPECT_EQ(request.kind, FuncKind::kSum);
    EXPECT_EQ(request.positions.size(), 4u);  // one operand per shard
  }
  EXPECT_TRUE(task_positions_in_range(w));
}

TEST(Workload, LedgerIncludesChecksum) {
  const Workload w = make_ledger_workload(60, 6, 11);
  EXPECT_EQ(w.blocks.size(), 60u);
  EXPECT_EQ(w.task.requests.size(), 13u);  // 6×(sum + dot-self) + checksum
  EXPECT_EQ(w.task.requests.back().kind, FuncKind::kPolyEval);
  EXPECT_EQ(w.task.requests.back().positions.size(), 60u);
}

TEST(Workload, RandomWorkloadRespectsSpec) {
  WorkloadSpec spec;
  spec.num_blocks = 40;
  spec.num_requests = 15;
  spec.positions_per_request = 3;
  spec.seed = 5;
  const Workload w = make_random_workload(spec);
  EXPECT_EQ(w.blocks.size(), 40u);
  EXPECT_EQ(w.task.requests.size(), 15u);
  EXPECT_TRUE(task_positions_in_range(w));
}

TEST(Workload, GeneratorsRejectEmptyShapes) {
  EXPECT_THROW(make_log_analytics_workload(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(make_shard_aggregation_workload(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(make_ledger_workload(10, 20, 1), std::invalid_argument);
  EXPECT_THROW(make_random_workload({0, 1, 1, true, 1}), std::invalid_argument);
}

TEST(Workload, WorkloadsExecuteHonestly) {
  // Every generated workload must be executable against its own blocks.
  const Workload workloads[] = {
      make_log_analytics_workload(40, 4, 1),
      make_shard_aggregation_workload(3, 5, 2),
      make_ledger_workload(30, 3, 3),
      make_random_workload({25, 10, 3, true, 4}),
  };
  for (const auto& w : workloads) {
    std::vector<core::SignedBlock> store(w.blocks.size());
    for (std::size_t i = 0; i < w.blocks.size(); ++i) store[i].block = w.blocks[i];
    const core::BlockLookup lookup = [&store](std::uint64_t index) -> const core::SignedBlock* {
      return index < store.size() ? &store[index] : nullptr;
    };
    EXPECT_NO_THROW({
      const auto exec = core::execute_task_honestly(w.task, lookup);
      EXPECT_EQ(exec.results().size(), w.task.requests.size()) << w.name;
    }) << w.name;
  }
}

// --- adversary campaigns ---------------------------------------------------

class CampaignTest : public ::testing::Test {
 protected:
  CampaignTest() : cloud(tiny_group(), CloudConfig{3, 1, 1212}) {
    user = cloud.register_user("campaign@sim");
    workload = make_shard_aggregation_workload(3, 12, 5);
    cloud.store_data(user, workload.blocks);
  }
  CloudSim cloud;
  std::size_t user = 0;
  Workload workload;
};

TEST_F(CampaignTest, NoAdversaryMeansNoDetections) {
  EpochAdversary adversary{AdversaryConfig{AdversaryStrategy::kNone, 1, {}, 0}};
  const auto stats = run_campaign(cloud, adversary, user, workload.task, {6, 6});
  EXPECT_EQ(stats.cheating_epochs, 0u);
  EXPECT_EQ(stats.false_positives, 0u);
}

TEST_F(CampaignTest, StaticAdversaryCaughtEveryEpoch) {
  ServerBehavior cheat;
  cheat.honest_compute_fraction = 0.0;
  EpochAdversary adversary{AdversaryConfig{AdversaryStrategy::kStatic, 1, cheat, 0}};
  const auto stats =
      run_campaign(cloud, adversary, user, workload.task, {5, 12 /*full part sampling*/});
  EXPECT_EQ(stats.cheating_epochs, 5u);
  EXPECT_EQ(stats.detected_epochs, 5u);
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 1.0);
  // Static adversary corrupts the same server each epoch.
  std::unordered_set<std::size_t> corrupted;
  for (const auto& epoch : stats.epochs) corrupted.insert(epoch.corrupted_servers);
  EXPECT_EQ(corrupted.size(), 1u);
}

TEST_F(CampaignTest, SleeperDormantThenActive) {
  ServerBehavior cheat;
  cheat.honest_compute_fraction = 0.0;
  EpochAdversary adversary{AdversaryConfig{AdversaryStrategy::kSleeper, 1, cheat,
                                           /*wake_epoch=*/3}};
  const auto stats = run_campaign(cloud, adversary, user, workload.task, {6, 12});
  // Epochs 0–2 clean, 3–5 under attack.
  for (const auto& epoch : stats.epochs) {
    EXPECT_EQ(epoch.any_cheating_executed, epoch.epoch >= 3) << "epoch " << epoch.epoch;
  }
  EXPECT_EQ(stats.cheating_epochs, 3u);
  EXPECT_EQ(stats.detected_epochs, 3u);
}

TEST_F(CampaignTest, MobileAdversaryStillCaught) {
  ServerBehavior cheat;
  cheat.honest_position_fraction = 0.0;
  EpochAdversary adversary{AdversaryConfig{AdversaryStrategy::kMobile, 1, cheat, 0}};
  const auto stats = run_campaign(cloud, adversary, user, workload.task, {6, 12});
  EXPECT_EQ(stats.cheating_epochs, 6u);
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 1.0);
}

TEST_F(CampaignTest, PartialCheatPartialSamplingDetectionIsProbabilistic) {
  ServerBehavior cheat;
  cheat.honest_compute_fraction = 0.5;
  cheat.guess_range = 2.0;
  EpochAdversary adversary{AdversaryConfig{AdversaryStrategy::kStatic, 1, cheat, 0}};
  const auto stats = run_campaign(cloud, adversary, user, workload.task, {12, 2});
  EXPECT_GT(stats.detection_rate(), 0.2);  // catches some...
  EXPECT_GT(stats.cheating_epochs, 0u);
  EXPECT_EQ(stats.false_positives, 0u);    // ...and never flags clean epochs
}

TEST_F(CampaignTest, AuditBytesAccumulate) {
  EpochAdversary adversary{AdversaryConfig{AdversaryStrategy::kNone, 1, {}, 0}};
  const auto stats = run_campaign(cloud, adversary, user, workload.task, {3, 4});
  EXPECT_GT(stats.total_audit_bytes, 0u);
}

}  // namespace
}  // namespace seccloud::sim
