// SHA-256 / HMAC / DRBG / hash-to-integer tests against published vectors.
#include <gtest/gtest.h>

#include "hash/hash_to.h"
#include "hash/hmac.h"
#include "hash/hmac_drbg.h"
#include "hash/sha256.h"

namespace seccloud::hash {
namespace {

TEST(Sha256, Fips180EmptyString) {
  EXPECT_EQ(to_hex(Sha256::digest(std::string_view{""})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(to_hex(Sha256::digest(std::string_view{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::digest(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view{msg}.substr(0, split));
    h.update(std::string_view{msg}.substr(split));
    EXPECT_EQ(h.finish(), Sha256::digest(std::string_view{msg})) << "split=" << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    for (const char c : msg) a.update(std::string_view{&c, 1});
    EXPECT_EQ(a.finish(), Sha256::digest(std::string_view{msg})) << "len=" << len;
  }
}

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string_view msg = "Hi There";
  const Digest d = hmac_sha256(key, as_bytes(msg));
  EXPECT_EQ(to_hex(d), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string_view key = "Jefe";
  const std::string_view msg = "what do ya want for nothing?";
  const Digest d = hmac_sha256(as_bytes(key), as_bytes(msg));
  EXPECT_EQ(to_hex(d), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string_view msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest d = hmac_sha256(key, as_bytes(msg));
  EXPECT_EQ(to_hex(d), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacDrbg, DeterministicFromSeed) {
  HmacDrbg a{std::string_view{"seed"}};
  HmacDrbg b{std::string_view{"seed"}};
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(HmacDrbg, DifferentSeedsDiverge) {
  HmacDrbg a{std::string_view{"seed-a"}};
  HmacDrbg b{std::string_view{"seed-b"}};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(HmacDrbg, WorksAsRandomSource) {
  HmacDrbg drbg{std::string_view{"key-gen"}};
  const num::BigUint bound = num::BigUint::from_hex("ffffffffffffffffffffffff");
  for (int i = 0; i < 20; ++i) {
    EXPECT_LT(drbg.next_below(bound), bound);
  }
}

TEST(Expand, ProducesRequestedLengthAndIsDeterministic) {
  const auto a = expand("tag", as_bytes(std::string_view{"data"}), 100);
  const auto b = expand("tag", as_bytes(std::string_view{"data"}), 100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
  const auto c = expand("tag2", as_bytes(std::string_view{"data"}), 100);
  EXPECT_NE(a, c);  // domain separation
}

TEST(Expand, PrefixConsistency) {
  // Counter-mode expansion: a longer output extends a shorter one.
  const auto short_out = expand("t", as_bytes(std::string_view{"d"}), 32);
  const auto long_out = expand("t", as_bytes(std::string_view{"d"}), 64);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(HashToInt, InRangeAndWellDistributed) {
  const num::BigUint modulus{1000};
  std::array<int, 10> decile{};
  for (int i = 0; i < 5000; ++i) {
    const std::string data = "item-" + std::to_string(i);
    const auto v = hash_to_int("test", as_bytes(data), modulus).to_u64();
    ASSERT_LT(v, 1000u);
    ++decile[v / 100];
  }
  for (const auto count : decile) EXPECT_GT(count, 350);
}

TEST(HashToInt, ZeroModulusThrows) {
  EXPECT_THROW(hash_to_int("t", as_bytes(std::string_view{"x"}), num::BigUint{}),
               std::domain_error);
}

TEST(HashToNonzero, NeverZero) {
  for (int i = 0; i < 200; ++i) {
    const std::string data = std::to_string(i);
    EXPECT_FALSE(hash_to_nonzero("t", as_bytes(data), num::BigUint{2}).is_zero());
  }
}

}  // namespace
}  // namespace seccloud::hash
