// Protocol value-type tests: function evaluation semantics, leaf encodings,
// block message binding, warrant body encoding, transport size consistency.
#include <gtest/gtest.h>

#include "seccloud/client.h"
#include "seccloud/codec.h"
#include "seccloud/types.h"
#include "sim/transport.h"

namespace seccloud::core {
namespace {

TEST(DataBlock, ValueRoundTrip) {
  for (const std::uint64_t v : {0ull, 1ull, 0xFFull, 0x0123456789ABCDEFull,
                                0xFFFFFFFFFFFFFFFFull}) {
    const DataBlock b = DataBlock::from_value(7, v);
    EXPECT_EQ(b.value(), v);
    EXPECT_EQ(b.index, 7u);
    EXPECT_EQ(b.payload.size(), 8u);
  }
}

TEST(DataBlock, ShortPayloadZeroPads) {
  DataBlock b;
  b.payload = {0x01, 0x02};
  EXPECT_EQ(b.value(), 0x0201u);
  DataBlock empty;
  EXPECT_EQ(empty.value(), 0u);
}

TEST(DataBlock, LongPayloadUsesFirstEightBytes) {
  DataBlock b;
  b.payload.assign(32, 0xFF);
  b.payload[8] = 0x00;  // beyond the 8-byte window
  EXPECT_EQ(b.value(), 0xFFFFFFFFFFFFFFFFull);
}

TEST(Evaluate, SumWrapsModulo64) {
  const std::uint64_t values[] = {0xFFFFFFFFFFFFFFFFull, 2};
  EXPECT_EQ(evaluate(FuncKind::kSum, values), 1u);
}

TEST(Evaluate, AverageIsExactOverWideSums) {
  // Two maximal values: the 128-bit accumulator must not overflow.
  const std::uint64_t values[] = {0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull};
  EXPECT_EQ(evaluate(FuncKind::kAverage, values), 0xFFFFFFFFFFFFFFFFull);
  const std::uint64_t uneven[] = {1, 2};
  EXPECT_EQ(evaluate(FuncKind::kAverage, uneven), 1u);  // floor
}

TEST(Evaluate, MinMax) {
  const std::uint64_t values[] = {5, 9, 3, 9, 1};
  EXPECT_EQ(evaluate(FuncKind::kMax, values), 9u);
  EXPECT_EQ(evaluate(FuncKind::kMin, values), 1u);
}

TEST(Evaluate, DotSelfMatchesManualSquares) {
  const std::uint64_t values[] = {3, 4};
  EXPECT_EQ(evaluate(FuncKind::kDotSelf, values), 25u);
}

TEST(Evaluate, PolyEvalIsOrderSensitive) {
  const std::uint64_t ab[] = {1, 2};
  const std::uint64_t ba[] = {2, 1};
  EXPECT_NE(evaluate(FuncKind::kPolyEval, ab), evaluate(FuncKind::kPolyEval, ba));
}

TEST(Evaluate, EmptyOperandsThrow) {
  EXPECT_THROW(evaluate(FuncKind::kSum, {}), std::invalid_argument);
}

TEST(Evaluate, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(FuncKind::kPolyEval); ++k) {
    EXPECT_STRNE(to_string(static_cast<FuncKind>(k)), "unknown");
  }
}

TEST(ResultLeafBytes, BindsKindPositionsAndResult) {
  ComputeRequest req;
  req.kind = FuncKind::kSum;
  req.positions = {1, 2, 3};

  const Bytes base = result_leaf_bytes(req, 100);
  EXPECT_NE(base, result_leaf_bytes(req, 101));  // result bound

  ComputeRequest other_kind = req;
  other_kind.kind = FuncKind::kMax;
  EXPECT_NE(base, result_leaf_bytes(other_kind, 100));  // kind bound

  ComputeRequest other_positions = req;
  other_positions.positions = {1, 2, 4};
  EXPECT_NE(base, result_leaf_bytes(other_positions, 100));  // positions bound

  ComputeRequest reordered = req;
  reordered.positions = {3, 2, 1};
  EXPECT_NE(base, result_leaf_bytes(reordered, 100));  // order bound
}

TEST(BlockMessage, BindsIndexAndPayload) {
  const DataBlock a = DataBlock::from_value(1, 42);
  DataBlock b = a;
  b.index = 2;
  EXPECT_NE(block_message_bytes(a), block_message_bytes(b));
  DataBlock c = a;
  c.payload[0] ^= 1;
  EXPECT_NE(block_message_bytes(a), block_message_bytes(c));
}

TEST(WarrantBody, UnambiguousEncoding) {
  // Length-prefixed fields: moving a character across the id boundary must
  // change the encoding.
  Warrant w1;
  w1.delegator_id = "ab";
  w1.delegatee_id = "c";
  w1.expiry_epoch = 5;
  Warrant w2;
  w2.delegator_id = "a";
  w2.delegatee_id = "bc";
  w2.expiry_epoch = 5;
  EXPECT_NE(w1.body_bytes(), w2.body_bytes());
}

TEST(Transport, SizesMatchRealEncodings) {
  const auto& g = pairing::tiny_group();
  num::Xoshiro256 rng{4242};
  const ibc::Sio sio{g, rng};
  const auto user = sio.extract("u");
  const auto server = sio.extract("s");
  const auto da = sio.extract("d");
  const UserClient client{g, sio.params(), user, server.q_id, da.q_id};

  const SignedBlock sb = client.sign_block(DataBlock::from_value(0, 9), rng);
  EXPECT_EQ(sim::wire_size_signed_block(g, sb), encode_signed_block(g, sb).size());

  const Warrant warrant = client.make_warrant(da.id, 9, rng);
  AuditChallenge challenge;
  challenge.sample_indices = {0, 1, 2};
  challenge.warrant = warrant;
  EXPECT_EQ(sim::wire_size_challenge(g, challenge), encode_challenge(g, challenge).size());
}

}  // namespace
}  // namespace seccloud::core
