// Crash recovery: the durable session journal (seccloud/journal.h) must
// survive torn writes, replay into a resumable session, and — the core
// guarantee — make a crashed-and-resumed audit session bit-identical to one
// that never crashed: same verdict, same tallies, same attempt timestamps.
#include <gtest/gtest.h>

#include <vector>

#include "bigint/rng.h"
#include "obs/metrics.h"
#include "seccloud/client.h"
#include "seccloud/journal.h"
#include "sim/crash.h"
#include "sim/session_link.h"

namespace seccloud {
namespace {

using core::AttemptOutcome;
using core::BufferJournal;
using core::JournalRecord;
using core::JournalRecordType;
using core::RecoveredSession;
using core::SessionVerdict;
using num::Xoshiro256;
using pairing::tiny_group;

// --- record codec -----------------------------------------------------------

JournalRecord sample_record() {
  JournalRecord record;
  record.type = JournalRecordType::kAttemptOutcome;
  record.session_id = 0xA1B2C3D4u;
  record.seq = 7;
  core::SessionReport tallies;
  tallies.attempts = 3;
  tallies.timeouts = 2;
  tallies.waited_units = 450;
  tallies.bytes_sent = 1234;
  record.payload = core::encode_attempt_outcome_payload(AttemptOutcome::kTimeout, tallies);
  return record;
}

TEST(JournalCodecTest, RoundTripsEveryRecordType) {
  const core::SessionReport empty_tallies;
  const std::vector<JournalRecord> records = {
      {JournalRecordType::kSessionStart, 1, 0,
       core::encode_session_start_payload(core::MessageType::kStorageChallenge, 99)},
      {JournalRecordType::kAttemptStart, 1, 1, core::encode_attempt_start_payload(0)},
      {JournalRecordType::kAttemptOutcome, 1, 1,
       core::encode_attempt_outcome_payload(AttemptOutcome::kAccepted, empty_tallies)},
      {JournalRecordType::kSessionEnd, 1, 1,
       core::encode_session_end_payload(SessionVerdict::kAccepted)},
      sample_record(),
  };
  for (const auto& record : records) {
    const core::Bytes encoded = core::encode_journal_record(record);
    std::size_t consumed = 0;
    const auto decoded = core::decode_journal_record(encoded, &consumed);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(consumed, encoded.size());
    EXPECT_EQ(decoded->type, record.type);
    EXPECT_EQ(decoded->session_id, record.session_id);
    EXPECT_EQ(decoded->seq, record.seq);
    EXPECT_EQ(decoded->payload, record.payload);
  }
}

TEST(JournalCodecTest, RejectsEverySingleByteCorruption) {
  const core::Bytes encoded = core::encode_journal_record(sample_record());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    core::Bytes tampered = encoded;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(core::decode_journal_record(tampered).has_value())
        << "byte " << i << " flip went undetected";
  }
}

TEST(JournalCodecTest, RejectsEveryTruncation) {
  const core::Bytes encoded = core::encode_journal_record(sample_record());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    const std::span<const std::uint8_t> prefix{encoded.data(), len};
    EXPECT_FALSE(core::decode_journal_record(prefix).has_value()) << "length " << len;
  }
}

TEST(JournalReplayTest, TruncationAtEveryByteKeepsTheIntactPrefix) {
  // Three records back to back; cutting the log at every possible byte must
  // recover exactly the records that landed whole, flag a torn tail iff the
  // cut fell inside a record, and never mis-parse.
  BufferJournal journal;
  journal.append({JournalRecordType::kSessionStart, 5, 0,
                  core::encode_session_start_payload(core::MessageType::kAuditChallenge, 42)});
  journal.append({JournalRecordType::kAttemptStart, 5, 1,
                  core::encode_attempt_start_payload(0)});
  journal.append({JournalRecordType::kSessionEnd, 5, 1,
                  core::encode_session_end_payload(SessionVerdict::kRejected)});
  const core::Bytes full = journal.bytes();

  std::vector<std::size_t> boundaries = {0};
  {
    std::size_t offset = 0;
    while (offset < full.size()) {
      std::size_t consumed = 0;
      ASSERT_TRUE(core::decode_journal_record(
                      std::span<const std::uint8_t>{full.data() + offset,
                                                    full.size() - offset},
                      &consumed)
                      .has_value());
      offset += consumed;
      boundaries.push_back(offset);
    }
  }
  ASSERT_EQ(boundaries.size(), 4u);

  for (std::size_t len = 0; len <= full.size(); ++len) {
    const auto replay =
        core::replay_journal(std::span<const std::uint8_t>{full.data(), len});
    std::size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= len) ++whole;
    EXPECT_EQ(replay.records.size(), whole) << "cut at " << len;
    EXPECT_EQ(replay.clean_bytes, boundaries[whole]) << "cut at " << len;
    EXPECT_EQ(replay.torn_tail, len != boundaries[whole]) << "cut at " << len;
  }
}

TEST(JournalReplayTest, TrailingGarbageDoesNotPoisonThePrefix) {
  BufferJournal journal;
  journal.append({JournalRecordType::kSessionStart, 9, 0,
                  core::encode_session_start_payload(core::MessageType::kStorageChallenge, 3)});
  core::Bytes log = journal.bytes();
  for (int i = 0; i < 24; ++i) log.push_back(0xEE);
  const auto replay = core::replay_journal(log);
  EXPECT_EQ(replay.records.size(), 1u);
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.clean_bytes, journal.bytes().size());
}

TEST(RecoverSessionTest, RejectsJournalsWithoutASessionStart) {
  EXPECT_FALSE(core::recover_session({}).valid);
  const core::Bytes garbage(40, 0x5A);
  EXPECT_FALSE(core::recover_session(garbage).valid);
  BufferJournal journal;  // an orphan attempt record — no session identity
  journal.append({JournalRecordType::kAttemptStart, 1, 1,
                  core::encode_attempt_start_payload(0)});
  EXPECT_FALSE(core::recover_session(journal.bytes()).valid);
}

// --- live sessions ----------------------------------------------------------

/// One self-contained audit world: keys, signed blocks, a computation task.
/// Every run_*/crash/resume below reconstructs server+link+session from the
/// same seeds, mirroring a real process restart.
struct Rig {
  Rig() : setup_rng{901}, sio{tiny_group(), setup_rng} {
    user = sio.extract("user@recovery");
    server_key = sio.extract("cs@recovery");
    da = sio.extract("da@recovery");
    client.emplace(tiny_group(), sio.params(), user, server_key.q_id, da.q_id);
    std::vector<core::DataBlock> raw;
    for (std::uint64_t i = 0; i < 16; ++i) {
      raw.push_back(core::DataBlock::from_value(i, 5 * i + 2));
    }
    blocks = client->sign_blocks(raw, setup_rng);
    for (std::size_t i = 0; i < 6; ++i) {
      core::ComputeRequest request;
      request.kind = core::FuncKind::kSum;
      request.positions = {2 * i, 2 * i + 1};
      task.requests.push_back(std::move(request));
    }
  }

  Xoshiro256 setup_rng;
  ibc::Sio sio;
  ibc::IdentityKey user, server_key, da;
  std::optional<core::UserClient> client;
  std::vector<core::SignedBlock> blocks;
  core::ComputationTask task;
};

constexpr std::uint64_t kSessionSeed = 0x5EC10D5EED1234ULL;

TEST(RecoverSessionTest, CleanConcludedJournalRecoversWithoutTheChannel) {
  Rig rig;
  sim::SimCloudServer server{tiny_group(), rig.server_key, "cs-clean", {}, 11};
  server.handle_store(rig.user.id, rig.blocks);
  sim::FaultyAuditLink link{tiny_group(), server, sim::FaultPlan::lossless(), 12};
  link.bind_storage(rig.user.q_id, rig.user.id);

  core::AuditSession session{tiny_group(), {}};
  BufferJournal journal;
  Xoshiro256 rng{kSessionSeed};
  const auto report = session.run_storage_audit(link, rig.user.q_id, rig.blocks.size(), 5,
                                                rig.da, core::SignatureCheckMode::kBatch,
                                                rng, &journal);
  ASSERT_EQ(report.verdict, SessionVerdict::kAccepted);

  const RecoveredSession recovered = core::recover_session(journal.bytes());
  ASSERT_TRUE(recovered.valid);
  EXPECT_FALSE(recovered.torn_tail);
  EXPECT_TRUE(recovered.concluded);
  EXPECT_EQ(recovered.verdict, SessionVerdict::kAccepted);
  EXPECT_EQ(recovered.request_type, core::MessageType::kStorageChallenge);
  EXPECT_EQ(recovered.carried.attempts, report.attempts);
  EXPECT_EQ(recovered.carried.waited_units, report.waited_units);
  EXPECT_EQ(recovered.carried.attempt_started_units, report.attempt_started_units);

  // Resuming a concluded session returns the journaled report without any
  // further channel traffic.
  const auto before = link.tally();
  const auto resumed = session.resume_storage_audit(link, recovered, rig.user.q_id,
                                                    rig.blocks.size(), 5, rig.da,
                                                    core::SignatureCheckMode::kBatch);
  EXPECT_TRUE(sim::session_reports_match(resumed, report));
  EXPECT_EQ(link.tally().delivered, before.delivered);
}

/// Runs the reference storage session (never crashed) and then, for every
/// requested (crash point, tear) pair, a twin from identical seeds that dies
/// there, recovers, resumes, and must match the reference bit for bit.
void exhaustive_storage_crash_sweep(Rig& rig, const sim::FaultPlan& plan,
                                    std::uint64_t link_seed, bool aligned_only,
                                    std::size_t min_expected_attempts) {
  core::SessionReport reference;
  BufferJournal ref_journal;
  {
    sim::SimCloudServer server{tiny_group(), rig.server_key, "cs-ref", {}, 21};
    server.handle_store(rig.user.id, rig.blocks);
    sim::FaultyAuditLink link{tiny_group(), server, plan, link_seed};
    link.bind_storage(rig.user.q_id, rig.user.id);
    core::AuditSession session{tiny_group(), {}};
    Xoshiro256 rng{kSessionSeed};
    reference = session.run_storage_audit(link, rig.user.q_id, rig.blocks.size(), 5,
                                          rig.da, core::SignatureCheckMode::kBatch, rng,
                                          &ref_journal);
  }
  ASSERT_GE(reference.attempts, min_expected_attempts);
  const auto ref_records = core::replay_journal(ref_journal.bytes());
  ASSERT_FALSE(ref_records.torn_tail);
  ASSERT_GE(ref_records.records.size(), 4u);  // start, ≥1 attempt pair, end

  std::size_t cases = 0;
  for (std::size_t point = 2; point <= ref_records.records.size(); ++point) {
    const auto type = ref_records.records[point - 1].type;
    const bool aligned = type == JournalRecordType::kAttemptStart ||
                         type == JournalRecordType::kSessionEnd;
    if (aligned_only && !aligned) continue;
    for (const std::size_t tear : {std::size_t{0}, std::size_t{1}, std::size_t{9}}) {
      ++cases;
      sim::CrashPlan crash_plan;
      crash_plan.crash_after_records = point - 1;
      crash_plan.tear_bytes = tear;
      sim::CrashingJournal dying{crash_plan};

      sim::SimCloudServer server{tiny_group(), rig.server_key, "cs-ref", {}, 21};
      server.handle_store(rig.user.id, rig.blocks);
      sim::FaultyAuditLink link{tiny_group(), server, plan, link_seed};
      link.bind_storage(rig.user.q_id, rig.user.id);
      core::AuditSession session{tiny_group(), {}};
      Xoshiro256 rng{kSessionSeed};
      EXPECT_THROW((void)session.run_storage_audit(link, rig.user.q_id, rig.blocks.size(),
                                                   5, rig.da,
                                                   core::SignatureCheckMode::kBatch, rng,
                                                   &dying),
                   sim::CrashError);

      const RecoveredSession recovered = core::recover_session(dying.bytes());
      ASSERT_TRUE(recovered.valid) << "point " << point << " tear " << tear;
      EXPECT_EQ(recovered.torn_tail, tear != 0);
      BufferJournal resumed_journal;
      const auto resumed = session.resume_storage_audit(
          link, recovered, rig.user.q_id, rig.blocks.size(), 5, rig.da,
          core::SignatureCheckMode::kBatch, &resumed_journal);
      EXPECT_TRUE(sim::session_reports_match(resumed, reference))
          << "point " << point << " tear " << tear;
    }
  }
  EXPECT_GE(cases, 3u);
}

TEST(CrashRecoveryTest, EveryBoundaryOverACleanChannelIsBitIdentical) {
  // A fault-free channel makes every record boundary a safe crash point —
  // including the misaligned outcome-append boundary — so sweep them all.
  Rig rig;
  exhaustive_storage_crash_sweep(rig, sim::FaultPlan::lossless(), 31,
                                 /*aligned_only=*/false, 1);
}

TEST(CrashRecoveryTest, AlignedBoundariesOverALossyChannelAreBitIdentical) {
  // Over a lossy channel only write-ahead-aligned boundaries (attempt starts
  // and the session end) keep the fault stream aligned across the crash.
  // Search deterministically for a link seed whose reference session needs
  // several attempts, so the sweep covers mid-retry crashes.
  Rig rig;
  const sim::FaultPlan plan = sim::FaultPlan::uniform_loss(0.45);
  std::uint64_t link_seed = 0;
  for (std::uint64_t candidate = 1; candidate <= 64; ++candidate) {
    sim::SimCloudServer server{tiny_group(), rig.server_key, "cs-seek", {}, 21};
    server.handle_store(rig.user.id, rig.blocks);
    sim::FaultyAuditLink link{tiny_group(), server, plan, candidate};
    link.bind_storage(rig.user.q_id, rig.user.id);
    core::AuditSession session{tiny_group(), {}};
    Xoshiro256 rng{kSessionSeed};
    const auto report = session.run_storage_audit(link, rig.user.q_id, rig.blocks.size(),
                                                  5, rig.da,
                                                  core::SignatureCheckMode::kBatch, rng);
    if (report.attempts >= 3 && report.conclusive()) {
      link_seed = candidate;
      break;
    }
  }
  ASSERT_NE(link_seed, 0u) << "no candidate seed produced a multi-attempt session";
  exhaustive_storage_crash_sweep(rig, plan, link_seed, /*aligned_only=*/true, 3);
}

TEST(CrashRecoveryTest, ComputationSessionResumesBitIdentically) {
  Rig rig;
  core::SessionReport reference;
  BufferJournal ref_journal;
  {
    Xoshiro256 rng{kSessionSeed};
    sim::SimCloudServer server{tiny_group(), rig.server_key, "cs-comp", {}, 41};
    server.handle_store(rig.user.id, rig.blocks);
    const auto outcome = server.handle_compute(rig.user.id, rig.user.q_id, rig.da.q_id,
                                               rig.task, rng);
    const core::Warrant warrant = rig.client->make_warrant(rig.da.id, 100, rng);
    sim::FaultyAuditLink link{tiny_group(), server, sim::FaultPlan::lossless(), 42};
    link.bind_computation(rig.user.q_id, outcome.task_id, 1);
    core::AuditSession session{tiny_group(), {}};
    reference = session.run_computation_audit(link, rig.user.q_id, server.q_id(), rig.task,
                                              outcome.commitment, warrant, 4, rig.da,
                                              core::SignatureCheckMode::kBatch, rng,
                                              &ref_journal);
  }
  ASSERT_EQ(reference.verdict, SessionVerdict::kAccepted);
  const auto ref_records = core::replay_journal(ref_journal.bytes());

  for (std::size_t point = 2; point <= ref_records.records.size(); ++point) {
    sim::CrashPlan plan;
    plan.crash_after_records = point - 1;
    plan.tear_bytes = 3;
    sim::CrashingJournal dying{plan};

    Xoshiro256 rng{kSessionSeed};
    sim::SimCloudServer server{tiny_group(), rig.server_key, "cs-comp", {}, 41};
    server.handle_store(rig.user.id, rig.blocks);
    const auto outcome = server.handle_compute(rig.user.id, rig.user.q_id, rig.da.q_id,
                                               rig.task, rng);
    const core::Warrant warrant = rig.client->make_warrant(rig.da.id, 100, rng);
    sim::FaultyAuditLink link{tiny_group(), server, sim::FaultPlan::lossless(), 42};
    link.bind_computation(rig.user.q_id, outcome.task_id, 1);
    core::AuditSession session{tiny_group(), {}};
    EXPECT_THROW((void)session.run_computation_audit(link, rig.user.q_id, server.q_id(),
                                                     rig.task, outcome.commitment, warrant,
                                                     4, rig.da,
                                                     core::SignatureCheckMode::kBatch, rng,
                                                     &dying),
                 sim::CrashError);

    const RecoveredSession recovered = core::recover_session(dying.bytes());
    ASSERT_TRUE(recovered.valid) << "point " << point;
    EXPECT_EQ(recovered.request_type, core::MessageType::kAuditChallenge);
    const auto resumed = session.resume_computation_audit(
        link, recovered, rig.user.q_id, server.q_id(), rig.task, outcome.commitment,
        warrant, 4, rig.da, core::SignatureCheckMode::kBatch);
    EXPECT_TRUE(sim::session_reports_match(resumed, reference)) << "point " << point;
  }
}

TEST(CrashRecoveryTest, TornFinalRecordRecoversWithoutError) {
  // The acceptance case: a journal whose final record is torn mid-write must
  // recover cleanly — prefix trusted, tear discarded, session resumable.
  Rig rig;
  sim::SimCloudServer server{tiny_group(), rig.server_key, "cs-torn", {}, 51};
  server.handle_store(rig.user.id, rig.blocks);
  sim::FaultyAuditLink link{tiny_group(), server, sim::FaultPlan::lossless(), 52};
  link.bind_storage(rig.user.q_id, rig.user.id);
  core::AuditSession session{tiny_group(), {}};
  BufferJournal journal;
  Xoshiro256 rng{kSessionSeed};
  const auto report = session.run_storage_audit(link, rig.user.q_id, rig.blocks.size(), 5,
                                                rig.da, core::SignatureCheckMode::kBatch,
                                                rng, &journal);
  ASSERT_TRUE(report.conclusive());

  for (std::size_t cut = 1; cut <= 20; ++cut) {
    core::Bytes log = journal.bytes();
    ASSERT_LT(cut, log.size());
    log.resize(log.size() - cut);
    const RecoveredSession recovered = core::recover_session(log);
    ASSERT_TRUE(recovered.valid) << "cut " << cut;
    EXPECT_TRUE(recovered.torn_tail) << "cut " << cut;
  }
}

TEST(CrashRecoveryTest, MonteCarloOverFaultyChannelsMatchesCrashFreeRuns) {
  // The ISSUE acceptance loop: seeded trials over lossy channels, each
  // crashed at a seeded aligned boundary, must all recover and reproduce the
  // crash-free verdict and tallies bit for bit.
  for (const bool storage : {true, false}) {
    sim::CrashTrialConfig config;
    config.base.plan = sim::FaultPlan::uniform_loss(0.3);
    config.base.storage_audit = storage;
    config.base.universe = 16;
    config.base.requests = 6;
    config.base.sample_size = 4;
    config.crash_probability = 1.0;
    const auto stats = sim::run_crash_recovery_trials(tiny_group(), config, 6,
                                                      storage ? 0xF00D : 0xBEEF);
    EXPECT_EQ(stats.trials, 6u);
    EXPECT_GE(stats.crashed, 1u);
    EXPECT_EQ(stats.recovered, stats.crashed);
    EXPECT_EQ(stats.verdict_matches, stats.recovered);
    EXPECT_EQ(stats.report_matches, stats.recovered);
  }
}

TEST(CrashRecoveryTest, JournalMetricsArePublished) {
  auto& registry = obs::default_registry();
  const auto records_before = registry.counter("journal.records").value();
  const auto replayed_before = registry.counter("journal.replayed").value();

  BufferJournal journal;
  journal.append({JournalRecordType::kSessionStart, 3, 0,
                  core::encode_session_start_payload(core::MessageType::kStorageChallenge, 8)});
  journal.append({JournalRecordType::kSessionEnd, 3, 1,
                  core::encode_session_end_payload(SessionVerdict::kAccepted)});
  (void)core::replay_journal(journal.bytes());

  EXPECT_EQ(registry.counter("journal.records").value(), records_before + 2);
  EXPECT_EQ(registry.counter("journal.replayed").value(), replayed_before + 2);
}

}  // namespace
}  // namespace seccloud
