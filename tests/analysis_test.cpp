// Sampling-analysis tests: Equations 10–18, the Figure 4 anchors the paper
// reports (t = 33 at CSC = SSC = 0.5 with R = 2; t = 15 as R → ∞), and
// Theorem 3 cross-validated against exhaustive search.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/history.h"
#include "analysis/sampling.h"

namespace seccloud::analysis {
namespace {

TEST(Sampling, HonestServerNeedsNoSamples) {
  const CheatModel honest{1.0, 1.0, 2.0, 0.0};
  // The raw survival probabilities (Eq. 10/12) are 1 ...
  EXPECT_DOUBLE_EQ(pr_fcs(honest, 10), 1.0);
  EXPECT_DOUBLE_EQ(pr_pcs(honest, 10), 1.0);
  // ... but no cheating is attempted, so success probability is 0 and no
  // sampling is required.
  EXPECT_DOUBLE_EQ(pr_cheating_success(honest, 10), 0.0);
  EXPECT_EQ(min_sample_size(honest, 1e-4).value(), 0u);
}

TEST(Sampling, UndetectableCheatHasNoFiniteSampleSize) {
  // |R| = 1: the "guess" is always right, so sampling can never catch it.
  const CheatModel m{0.0, 1.0, 1.0, 0.0};
  EXPECT_FALSE(min_sample_size(m, 1e-4).has_value());
}

TEST(Sampling, FullCheaterCaughtFast) {
  // CSC = 0, unguessable f: every sample catches it.
  const CheatModel m{0.0, 1.0, infinite_range(), 0.0};
  EXPECT_NEAR(pr_fcs(m, 1), 0.0, 1e-12);
  EXPECT_EQ(min_sample_size(m, 1e-4).value(), 1u);
}

TEST(Sampling, Equation10Shape) {
  const CheatModel m{0.5, 1.0, 2.0, 0.0};
  // per-sample survival = 0.5 + 0.5/2 = 0.75
  EXPECT_DOUBLE_EQ(per_sample_fcs(m), 0.75);
  EXPECT_DOUBLE_EQ(pr_fcs(m, 2), 0.75 * 0.75);
  // Monotonically decreasing in t.
  for (std::size_t t = 1; t < 50; ++t) {
    EXPECT_LT(pr_fcs(m, t + 1), pr_fcs(m, t));
  }
}

TEST(Sampling, Equation12Shape) {
  const CheatModel m{1.0, 0.5, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(per_sample_pcs(m), 0.5);
  EXPECT_DOUBLE_EQ(pr_pcs(m, 3), 0.125);
  // A forging-capable cloud survives better.
  const CheatModel forger{1.0, 0.5, 2.0, 0.5};
  EXPECT_GT(per_sample_pcs(forger), per_sample_pcs(m));
}

TEST(Sampling, PaperAnchorHalfHalfRangeTwoNeeds33Samples) {
  // Section VII-A: "cloud server has computing with half CSC and half SSC of
  // the task, the range of the domain is R = 2, we need at least 33 samples
  // to ensure the probability of successful cheating to be below ε = 1e-4."
  const CheatModel m{0.5, 0.5, 2.0, 0.0};
  const auto t = min_sample_size(m, 1e-4);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 33u);
}

TEST(Sampling, PaperAnchorInfiniteRangeNeeds15Samples) {
  // "When R is large enough ... we only need 15 samples."
  const CheatModel m{0.5, 0.5, infinite_range(), 0.0};
  const auto t = min_sample_size(m, 1e-4);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 15u);
}

TEST(Sampling, MinSampleSizeIsExactBoundary) {
  const CheatModel m{0.5, 0.5, 2.0, 0.0};
  const std::size_t t = *min_sample_size(m, 1e-4);
  EXPECT_LE(pr_cheating_success(m, t), 1e-4);
  EXPECT_GT(pr_cheating_success(m, t - 1), 1e-4);
}

TEST(Sampling, JointIsBelowUnionBound) {
  const CheatModel m{0.6, 0.7, 4.0, 0.0};
  for (std::size_t t = 1; t < 30; ++t) {
    EXPECT_LE(pr_cheating_success_joint(m, t), pr_cheating_success(m, t));
  }
}

TEST(Sampling, Figure4SurfaceIsMonotone) {
  // Required t grows with both confidences (harder to catch near-honest
  // servers) — the shape of the paper's Figure 4 surface.
  const double grid[] = {0.0, 0.25, 0.5, 0.75, 0.9};
  std::size_t prev_t = 0;
  for (const double c : grid) {
    const CheatModel m{c, c, 2.0, 0.0};
    const auto t = min_sample_size(m, 1e-4);
    ASSERT_TRUE(t.has_value());
    EXPECT_GE(*t, prev_t);
    prev_t = *t;
  }
  EXPECT_GT(prev_t, 80u);  // the surface climbs steeply toward CSC,SSC → 1
}

TEST(Sampling, Figure4HigherRangeNeedsFewerSamples) {
  for (const double conf : {0.3, 0.5, 0.7}) {
    const CheatModel narrow{conf, conf, 2.0, 0.0};
    const CheatModel wide{conf, conf, 1000.0, 0.0};
    EXPECT_GE(*min_sample_size(narrow, 1e-4), *min_sample_size(wide, 1e-4));
  }
}


TEST(Sampling, Figure4GoldenDiagonal) {
  // Regression lock on the Figure-4 surface: every point on the R = 2
  // diagonal satisfies the exact boundary condition, and the paper-anchor
  // entry is pinned to its published value.
  const double grid[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  for (std::size_t i = 0; i < 10; ++i) {
    const CheatModel m{grid[i], grid[i], 2.0, 0.0};
    const auto t = min_sample_size(m, 1e-4);
    ASSERT_TRUE(t.has_value()) << grid[i];
    if (i == 5) {
      EXPECT_EQ(*t, 33u);  // the paper anchor, asserted exactly
    }
    EXPECT_LE(pr_cheating_success(m, *t), 1e-4) << grid[i];
    if (*t > 0) {
      EXPECT_GT(pr_cheating_success(m, *t - 1), 1e-4) << grid[i];
    }
  }
}

// --- Theorem 3 / Eq. 17–18 --------------------------------------------------

TEST(OptimalSampling, MatchesExhaustiveSearch) {
  const double qs[] = {0.1, 0.3, 0.5, 0.75, 0.9, 0.99};
  const CostModel models[] = {
      {1, 1, 1, 1.0, 5.0, 1e4},
      {1, 1, 1, 10.0, 5.0, 1e6},
      {2, 1, 3, 0.5, 1.0, 1e3},
      {1, 1, 1, 100.0, 50.0, 1e2},
  };
  for (const auto& c : models) {
    for (const double q : qs) {
      const std::size_t closed = optimal_sample_size(c, q);
      const std::size_t brute = optimal_sample_size_exhaustive(c, q, 5000);
      EXPECT_EQ(closed, brute) << "q=" << q << " c_trans=" << c.c_trans;
    }
  }
}

TEST(OptimalSampling, StationaryPointMatchesEq18Formula) {
  const CostModel c{1, 1, 1, 2.0, 0.0, 1e5};
  const double q = 0.5;
  // Eq. 18: t* = ln(−a1·C_trans/(a3·C_cheat·ln q)) / ln q.
  const double t_star = std::log(-(c.a1 * c.c_trans) / (c.a3 * c.c_cheat * std::log(q))) /
                        std::log(q);
  const std::size_t t_opt = optimal_sample_size(c, q);
  EXPECT_NEAR(static_cast<double>(t_opt), t_star, 1.0);
}

TEST(OptimalSampling, CheaperTransmissionMeansMoreSamples) {
  const double q = 0.6;
  CostModel expensive{1, 1, 1, 100.0, 1.0, 1e5};
  CostModel cheap{1, 1, 1, 0.1, 1.0, 1e5};
  EXPECT_GT(optimal_sample_size(cheap, q), optimal_sample_size(expensive, q));
}

TEST(OptimalSampling, HigherCheatDamageMeansMoreSamples) {
  const double q = 0.6;
  CostModel low{1, 1, 1, 1.0, 1.0, 10.0};
  CostModel high{1, 1, 1, 1.0, 1.0, 1e8};
  EXPECT_GT(optimal_sample_size(high, q), optimal_sample_size(low, q));
}

TEST(OptimalSampling, DegenerateQsGiveZero) {
  const CostModel c{};
  EXPECT_EQ(optimal_sample_size(c, 0.0), 0u);
  EXPECT_EQ(optimal_sample_size(c, 1.0), 0u);
}

TEST(OptimalSampling, TotalCostComponentsAddUp) {
  const CostModel c{2, 3, 4, 5.0, 7.0, 11.0};
  const double q = 0.5;
  EXPECT_DOUBLE_EQ(total_cost(c, q, 0), 3 * 7.0 + 4 * 11.0);
  EXPECT_DOUBLE_EQ(total_cost(c, q, 2), 2 * 2 * 5.0 + 3 * 7.0 + 4 * 11.0 * 0.25);
}

// --- History learner ---------------------------------------------------------

TEST(Sampling, DetailedResultDiscriminatesOutcomes) {
  // Honest server: found immediately at t = 0.
  const auto honest = min_sample_size_detailed({1.0, 1.0, 2.0, 0.0}, 1e-4);
  EXPECT_EQ(honest.outcome, SampleSizeOutcome::kFound);
  EXPECT_EQ(honest.min_t, 0u);

  // |R| = 1: fundamentally undetectable, NOT a cap problem.
  const auto undetectable = min_sample_size_detailed({0.0, 1.0, 1.0, 0.0}, 1e-4);
  EXPECT_EQ(undetectable.outcome, SampleSizeOutcome::kUndetectable);

  // Near-perfect cheat with a tiny cap: detectable in principle, cap too low.
  const CheatModel slippery{0.99, 1.0, 2.0, 0.0};
  const auto capped = min_sample_size_detailed(slippery, 1e-4, /*t_max=*/10);
  EXPECT_EQ(capped.outcome, SampleSizeOutcome::kTMaxExceeded);
  // With a generous cap the same model IS detectable — proving the two
  // nullopt cases of the optional API really were different situations.
  const auto found = min_sample_size_detailed(slippery, 1e-4);
  EXPECT_EQ(found.outcome, SampleSizeOutcome::kFound);
  EXPECT_GT(found.min_t, 10u);

  // The optional wrapper still conflates them (documented behavior).
  EXPECT_FALSE(min_sample_size({0.0, 1.0, 1.0, 0.0}, 1e-4).has_value());
  EXPECT_FALSE(min_sample_size(slippery, 1e-4, 10).has_value());
}

TEST(OptimalSampling, HugeCheatDamageStaysFinite) {
  // Regression: with C_cheat at infinite_range() scale the old direct
  // evaluation produced inf/NaN intermediates — Eq. 17 returned NaN and
  // Eq. 18 rounded its argument to -0 and answered t* = 0 ("audit
  // nothing") precisely when the stakes were highest.
  const CostModel extreme{1.0, 1.0, 1e10, 1.0, 1.0, 1e300};
  const double q = 0.5;
  for (const std::size_t t : {std::size_t{0}, std::size_t{10}, std::size_t{1000}}) {
    EXPECT_FALSE(std::isnan(total_cost(extreme, q, t))) << "t=" << t;
  }
  const std::size_t t_star = optimal_sample_size(extreme, q);
  EXPECT_GT(t_star, 0u) << "huge cheat damage must increase, not zero, the sample size";
  EXPECT_EQ(t_star, optimal_sample_size_exhaustive(extreme, q, 4000));
}

TEST(OptimalSampling, LogSpaceMatchesBruteForceAcrossScales) {
  // Pin Theorem 3 against the exhaustive scan over a sweep of damage scales
  // spanning the overflow boundary of a3·C_cheat·ln q.
  const double q = 0.75;
  for (const double c_cheat : {1e2, 1e6, 1e15, 1e100, 1e300}) {
    for (const double a3 : {1.0, 1e5, 1e10}) {
      const CostModel c{2.0, 1.0, a3, 3.0, 1.0, c_cheat};
      const std::size_t analytic = optimal_sample_size(c, q);
      const std::size_t brute = optimal_sample_size_exhaustive(c, q, 5000);
      EXPECT_EQ(analytic, brute) << "a3=" << a3 << " c_cheat=" << c_cheat;
    }
  }
}

TEST(OptimalSampling, TotalCostNeverNanOnDegenerateInputs) {
  const CostModel inf_damage{1.0, 1.0, 1e200, 1.0, 1.0, 1e200};  // a3·C_cheat = inf
  // t = 2000 makes pow(q, t) underflow to exactly 0: the old direct
  // evaluation computed inf·0 = NaN here.
  EXPECT_FALSE(std::isnan(total_cost(inf_damage, 0.5, 2000)));
  EXPECT_FALSE(std::isnan(total_cost(inf_damage, 0.5, 500)));
  EXPECT_FALSE(std::isnan(total_cost(inf_damage, 0.0, 5)));
  EXPECT_TRUE(std::isinf(total_cost(inf_damage, 0.5, 0)));  // genuinely infinite
}

TEST(History, FirstObservationSetsEstimates) {
  CostHistoryLearner learner;
  learner.observe_audit(10.0, 3.0);
  const CostModel m = learner.model();
  EXPECT_DOUBLE_EQ(m.c_trans, 10.0);
  EXPECT_DOUBLE_EQ(m.c_comp, 3.0);
}

TEST(History, EmaConvergesToStationaryCosts) {
  CostHistoryLearner learner{0.3};
  for (int i = 0; i < 100; ++i) learner.observe_audit(42.0, 7.0);
  EXPECT_NEAR(learner.model().c_trans, 42.0, 1e-9);
  EXPECT_NEAR(learner.model().c_comp, 7.0, 1e-9);
}

TEST(History, TracksDriftingCosts) {
  CostHistoryLearner learner{0.5};
  for (int i = 0; i < 50; ++i) learner.observe_audit(10.0, 1.0);
  for (int i = 0; i < 50; ++i) learner.observe_audit(100.0, 1.0);
  EXPECT_NEAR(learner.model().c_trans, 100.0, 1.0);
}

TEST(History, CheatDamageTrackedSeparately) {
  CostHistoryLearner learner;
  EXPECT_FALSE(learner.has_damage_estimate());
  learner.observe_cheat_damage(1e6);
  EXPECT_TRUE(learner.has_damage_estimate());
  EXPECT_DOUBLE_EQ(learner.model().c_cheat, 1e6);
}

TEST(History, RejectsBadSmoothing) {
  EXPECT_THROW(CostHistoryLearner{0.0}, std::invalid_argument);
  EXPECT_THROW(CostHistoryLearner{1.5}, std::invalid_argument);
}

TEST(History, LearnedModelDrivesOptimizer) {
  // End-to-end Theorem 3 with learned coefficients.
  CostHistoryLearner learner;
  for (int i = 0; i < 20; ++i) learner.observe_audit(1.0, 2.0);
  learner.observe_cheat_damage(1e5);
  CostModel m = learner.model();
  const std::size_t t = optimal_sample_size(m, 0.75);
  EXPECT_GT(t, 0u);
  EXPECT_EQ(t, optimal_sample_size_exhaustive(m, 0.75, 2000));
}

}  // namespace
}  // namespace seccloud::analysis
